"""Property tests: state serialization, memory regions, audit chains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audit import AuditLog
from repro.crypto.random_source import RandomSource
from repro.xen.memory import PAGE_SIZE, MemoryRegion, PhysicalMemory

# -- state serialization ------------------------------------------------------

# A single provisioned device reused across examples (keygen is costly);
# examples mutate NV and PCRs through a controlled sequence then roundtrip.
from repro.tpm.client import TpmClient
from repro.tpm.device import TpmDevice
from repro.tpm.nvram import NV_PER_AUTHREAD, NV_PER_AUTHWRITE
from repro.tpm.state import TpmState

_RNG = RandomSource(b"prop-state")
_DEVICE = TpmDevice(_RNG.fork("dev"), key_bits=512, nv_capacity=4096)
_DEVICE.power_on()
_CLIENT = TpmClient(_DEVICE.execute, _RNG.fork("cli"))
_EK = _CLIENT.read_pubek()
_CLIENT.take_ownership(b"O" * 20, b"S" * 20, _EK)
_CLIENT.nv_define(b"O" * 20, 0x77, 64, NV_PER_AUTHREAD | NV_PER_AUTHWRITE, b"N" * 20)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.binary(min_size=20, max_size=20)),
        max_size=5,
    ),
    st.binary(min_size=1, max_size=64),
)
def test_state_roundtrip_after_arbitrary_mutations(extends, nv_data):
    for index, measurement in extends:
        _CLIENT.extend(index, measurement)
    _CLIENT.nv_write(b"N" * 20, 0x77, 0, nv_data[:64])
    blob = _DEVICE.save_state_blob()
    restored = TpmState.deserialize(blob)
    assert restored.serialize() == blob
    assert restored.pcrs.snapshot() == _DEVICE.state.pcrs.snapshot()
    assert restored.nv.get(0x77).data == _DEVICE.state.nv.get(0x77).data
    assert restored.owner_auth == _DEVICE.state.owner_auth


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_state_secrets_always_inside_blob(seed):
    """Whatever the RNG produced, secret_material() ⊆ serialized state."""
    device = TpmDevice(RandomSource(seed), key_bits=512)
    device.power_on()
    blob = device.save_state_blob()
    for secret in device.state.secret_material():
        assert secret in blob


# -- memory regions --------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 4),                      # pages in the region
    st.integers(0, 3 * PAGE_SIZE),          # write offset
    st.binary(min_size=0, max_size=2 * PAGE_SIZE),
)
def test_region_write_read_identity(pages, offset, data):
    memory = PhysicalMemory(total_pages=16)
    region = MemoryRegion(memory, 1, memory.allocate(1, pages))
    if offset + len(data) <= region.size:
        region.write(offset, data)
        assert region.read(offset, len(data)) == data
    else:
        from repro.util.errors import PageFault
        import pytest

        with pytest.raises(PageFault):
            region.write(offset, data)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2 * PAGE_SIZE - 64), st.binary(min_size=1, max_size=64)),
        min_size=1,
        max_size=8,
    )
)
def test_region_last_write_wins(writes):
    """Overlapping writes behave like a flat byte array."""
    memory = PhysicalMemory(total_pages=8)
    region = MemoryRegion(memory, 1, memory.allocate(1, 2))
    mirror = bytearray(region.size)
    for offset, data in writes:
        region.write(offset, data)
        mirror[offset : offset + len(data)] = data
    assert region.read(0, region.size) == bytes(mirror)


# -- audit chain ---------------------------------------------------------------------


record = st.tuples(
    st.text(min_size=1, max_size=12),
    st.integers(0, 9),
    st.sampled_from(["TPM_Extend", "TPM_Quote", "TPM_Seal"]),
    st.booleans(),
    st.text(max_size=20),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(record, max_size=20))
def test_audit_chain_always_verifies_untampered(entries):
    log = AuditLog()
    for subject, instance, op, allowed, reason in entries:
        log.append(subject, instance, op, allowed, reason)
    assert log.verify_chain()
    assert len(log) == len(entries)
    assert len(log.denials()) == sum(1 for e in entries if not e[3])


@settings(max_examples=30, deadline=None)
@given(st.lists(record, min_size=2, max_size=15), st.data())
def test_audit_any_edit_detected(entries, data):
    import dataclasses

    log = AuditLog()
    for subject, instance, op, allowed, reason in entries:
        log.append(subject, instance, op, allowed, reason)
    victim = data.draw(st.integers(0, len(entries) - 1))
    records = log._records
    records[victim] = dataclasses.replace(
        records[victim], reason=records[victim].reason + "-edited"
    )
    assert not log.verify_chain()
