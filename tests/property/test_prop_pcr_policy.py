"""Property tests: PCR algebra and policy-engine invariants."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import ANY, CommandClass, PolicyEngine, classify_ordinal
from repro.tpm.constants import NUM_PCRS
from repro.tpm.pcr import PcrBank, PcrSelection

digest20 = st.binary(min_size=20, max_size=20)
pcr_index = st.integers(0, NUM_PCRS - 1)


@given(pcr_index, st.lists(digest20, min_size=1, max_size=10))
def test_pcr_extend_is_fold(index, measurements):
    """The bank equals the explicit hash fold, whatever the sequence."""
    bank = PcrBank()
    expected = b"\x00" * 20
    for m in measurements:
        bank.extend(index, m)
        expected = hashlib.sha1(expected + m).digest()
    assert bank.read(index) == expected


@given(pcr_index, digest20, digest20)
def test_pcr_extend_not_commutative_unless_equal(index, m1, m2):
    a, b = PcrBank(), PcrBank()
    a.extend(index, m1)
    a.extend(index, m2)
    b.extend(index, m2)
    b.extend(index, m1)
    assert (a.read(index) == b.read(index)) == (m1 == m2)


@given(st.sets(pcr_index, min_size=1, max_size=8), st.data())
def test_composite_only_depends_on_selected(indices, data):
    bank = PcrBank()
    selection = PcrSelection(indices)
    baseline = bank.composite_digest(selection)
    # Extending any UNselected PCR leaves the composite alone.
    unselected = [i for i in range(NUM_PCRS) if i not in indices]
    if unselected:
        idx = data.draw(st.sampled_from(unselected))
        bank.extend(idx, b"\x55" * 20)
        assert bank.composite_digest(selection) == baseline
    # Extending any selected PCR changes it.
    idx = data.draw(st.sampled_from(sorted(indices)))
    bank.extend(idx, b"\x66" * 20)
    assert bank.composite_digest(selection) != baseline


@given(st.sets(pcr_index, max_size=NUM_PCRS))
def test_selection_roundtrip(indices):
    from repro.util.bytesio import ByteReader

    selection = PcrSelection(indices)
    restored = PcrSelection.deserialize(ByteReader(selection.serialize()))
    assert restored == selection
    assert restored.indices == sorted(indices)


subjects = st.sampled_from(["s1", "s2", "s3", ANY])
instances = st.sampled_from([1, 2, 3, ANY])
classes = st.sampled_from([c for c in CommandClass if c is not CommandClass.UNKNOWN])
ordinals = st.sampled_from(
    sorted(
        o for o in range(0x100)
        if classify_ordinal(o) is not CommandClass.UNKNOWN
    )
)


@given(st.lists(st.tuples(subjects, instances, classes), max_size=20),
       st.sampled_from(["s1", "s2", "s3"]), st.sampled_from([1, 2, 3]), ordinals)
def test_policy_deny_by_default_and_soundness(rules, subject, instance, ordinal):
    """A decision is allowed iff some installed rule covers it."""
    engine = PolicyEngine()
    for rule_subject, rule_instance, rule_class in rules:
        engine.add_rule(rule_subject, rule_instance, rule_class)
    decision = engine.decide(subject, instance, ordinal)
    cls = classify_ordinal(ordinal)
    covering = [
        (rs, ri, rc)
        for rs, ri, rc in rules
        if rc is cls
        and rs in (subject, ANY)
        and ri in (instance, ANY)
    ]
    assert decision.allowed == bool(covering)


@given(st.lists(st.tuples(subjects, instances, classes), min_size=1, max_size=15))
def test_policy_revoke_all_restores_default_deny(rules):
    engine = PolicyEngine()
    installed = []
    for rule_subject, rule_instance, rule_class in rules:
        installed += engine.add_rule(rule_subject, rule_instance, rule_class)
    for rule in installed:
        try:
            engine.revoke_rule(rule.rule_id)
        except Exception:
            pass
    for subject in ("s1", "s2", "s3"):
        for instance in (1, 2, 3):
            from repro.tpm.constants import TPM_ORD_PcrRead

            assert not engine.decide(subject, instance, TPM_ORD_PcrRead).allowed


@given(st.integers(0, 2**31))
def test_classification_is_total(ordinal):
    assert classify_ordinal(ordinal) in CommandClass
