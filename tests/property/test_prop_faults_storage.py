"""Property tests: crash-consistent storage under seeded fault plans.

The contract pinned here is the storage layer's whole reason to exist:
whatever a seeded fault plan does to the save path (torn writes — soft or
hard-crash — and full disks) and to the read path (transient corruption),
a restore returns **exactly the payload of the newest committed save** —
a fallback may reach back one generation, but never hands out corrupt or
partial data — and the same seed produces the same fault sequence twice.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultKind, FaultPlan, injector_scope, spec
from repro.harness.builder import fresh_timing_context
from repro.util.errors import FaultInjected, RetryExhausted, VtpmError
from repro.vtpm.storage import DiskStore, VtpmStorage

UUID = "prop-vm"


def _chaos_plan(seed, p_torn, p_enospc, hard_torn, corrupt_reads):
    specs = []
    if p_torn > 0.0:
        specs.append(
            spec(
                FaultKind.STORAGE_TORN_WRITE,
                probability=p_torn,
                transient=not hard_torn,
            )
        )
    if p_enospc > 0.0:
        specs.append(spec(FaultKind.STORAGE_ENOSPC, probability=p_enospc))
    if corrupt_reads:
        # STORAGE_ATTEMPTS re-reads can absorb up to two corrupt reads of
        # one generation, so the cap keeps every file ultimately readable.
        specs.append(
            spec(
                FaultKind.STORAGE_READ_CORRUPT,
                every=1,
                max_fires=min(corrupt_reads, 2),
            )
        )
    return FaultPlan(specs=tuple(specs), seed=seed, name="prop-chaos")


def _run_saves(storage, payloads):
    """Drive every save through the injector; return what committed."""
    committed = []
    for payload in payloads:
        try:
            storage.save_instance_state(UUID, None, payload)
        except (FaultInjected, RetryExhausted):
            continue  # hard crash or exhausted retries: not committed
        committed.append(payload)
    return committed


@settings(max_examples=80, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=48), min_size=1, max_size=7),
    seed=st.integers(0, 2**16),
    p_torn=st.sampled_from([0.0, 0.2, 0.5, 0.9]),
    p_enospc=st.sampled_from([0.0, 0.3]),
    hard_torn=st.booleans(),
    corrupt_reads=st.integers(0, 2),
)
def test_restore_is_latest_committed_never_corrupt(
    payloads, seed, p_torn, p_enospc, hard_torn, corrupt_reads
):
    fresh_timing_context()
    storage = VtpmStorage(DiskStore(), sealer=None)
    plan = _chaos_plan(seed, p_torn, p_enospc, hard_torn, corrupt_reads)
    with injector_scope(FaultInjector(plan)):
        committed = _run_saves(storage, payloads)
        if not committed:
            # Nothing ever landed: restore must refuse, not fabricate.
            with pytest.raises(VtpmError):
                storage.load_instance_state(UUID, None)
            return
        restored = storage.load_instance_state(UUID, None)
    # Exactly the newest committed payload — never a torn prefix, never a
    # flipped-bit copy, never an older generation than necessary.
    assert restored == committed[-1]


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=6),
    seed=st.integers(0, 2**16),
)
def test_same_seed_reproduces_identical_fault_sequence(payloads, seed):
    signatures = []
    for _ in range(2):
        fresh_timing_context()
        storage = VtpmStorage(DiskStore(), sealer=None)
        plan = _chaos_plan(seed, 0.5, 0.3, False, 1)
        with injector_scope(FaultInjector(plan)) as injector:
            committed = _run_saves(storage, payloads)
            if committed:
                storage.load_instance_state(UUID, None)
            signatures.append(injector.event_signature())
    assert signatures[0] == signatures[1]


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=6),
    seed=st.integers(0, 2**16),
)
def test_hard_crash_mid_save_preserves_previous_generation(payloads, seed):
    """Every save dies mid-write (hard): after any prefix of crashes, the
    last state that committed *before* chaos began is still restorable."""
    fresh_timing_context()
    storage = VtpmStorage(DiskStore(), sealer=None)
    storage.save_instance_state(UUID, None, b"pre-chaos baseline")
    plan = FaultPlan(
        specs=(spec(FaultKind.STORAGE_TORN_WRITE, every=1, transient=False),),
        seed=seed,
        name="prop-hard-crash",
    )
    with injector_scope(FaultInjector(plan)):
        for payload in payloads:
            with pytest.raises(FaultInjected):
                storage.save_instance_state(UUID, None, payload)
    assert storage.load_instance_state(UUID, None) == b"pre-chaos baseline"
