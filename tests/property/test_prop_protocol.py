"""Property tests: authorization protocol and key-hierarchy invariants."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.random_source import RandomSource
from repro.tpm.client import TpmClient
from repro.tpm.constants import (
    TPM_AUTHFAIL,
    TPM_KEY_SIGNING,
    TPM_KEY_STORAGE,
    TPM_KH_SRK,
)
from repro.tpm.device import TpmDevice
from repro.util.errors import TpmError

auth20 = st.binary(min_size=20, max_size=20)


def _fresh_owned(seed: bytes, owner: bytes, srk: bytes):
    rng = RandomSource(seed)
    device = TpmDevice(rng.fork("d"), key_bits=512)
    device.power_on()
    client = TpmClient(device.execute, rng.fork("c"))
    ek = client.read_pubek()
    client.take_ownership(owner, srk, ek)
    return device, client


# A single provisioned pair for secret-agnostic protocol properties.
_DEVICE, _CLIENT = _fresh_owned(b"prop-proto", b"O" * 20, b"S" * 20)


@settings(max_examples=30, deadline=None)
@given(auth20, st.binary(min_size=1, max_size=64))
def test_seal_unseal_total_over_auths(data_auth, payload):
    """Whatever data auth the guest picks, seal∘unseal is identity — and
    any *other* auth fails with TPM_AUTHFAIL."""
    blob = _CLIENT.seal(TPM_KH_SRK, b"S" * 20, payload, data_auth)
    assert _CLIENT.unseal(TPM_KH_SRK, b"S" * 20, blob, data_auth) == payload
    wrong = bytes(b ^ 1 for b in data_auth)
    with pytest.raises(TpmError) as err:
        _CLIENT.unseal(TPM_KH_SRK, b"S" * 20, blob, wrong)
    assert err.value.code == TPM_AUTHFAIL


@settings(max_examples=25, deadline=None)
@given(auth20)
def test_key_auth_gates_signing(key_auth):
    blob = _CLIENT.create_wrap_key(
        TPM_KH_SRK, b"S" * 20, key_auth, TPM_KEY_SIGNING, 512
    )
    handle = _CLIENT.load_key2(TPM_KH_SRK, b"S" * 20, blob)
    digest = hashlib.sha1(key_auth).digest()
    signature = _CLIENT.sign(handle, key_auth, digest)
    assert _CLIENT.get_pub_key(handle, key_auth).verify_sha1(digest, signature)
    wrong = bytes(b ^ 0xFF for b in key_auth)
    with pytest.raises(TpmError) as err:
        _CLIENT.sign(handle, wrong, digest)
    assert err.value.code == TPM_AUTHFAIL
    _CLIENT.evict_key(handle)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 4), st.integers(0, 2**31))
def test_storage_hierarchy_chains(depth, seed):
    """A chain of storage keys of any depth wraps and unwraps correctly,
    and a leaf signing key at the bottom still signs."""
    rng = RandomSource(seed)
    parent_handle = TPM_KH_SRK
    parent_auth = b"S" * 20
    handles = []
    for level in range(depth):
        auth = bytes([level + 1]) * 20
        blob = _CLIENT.create_wrap_key(
            parent_handle, parent_auth, auth, TPM_KEY_STORAGE, 512
        )
        parent_handle = _CLIENT.load_key2(parent_handle, parent_auth, blob)
        parent_auth = auth
        handles.append(parent_handle)
    leaf_auth = b"\xaa" * 20
    leaf_blob = _CLIENT.create_wrap_key(
        parent_handle, parent_auth, leaf_auth, TPM_KEY_SIGNING, 512
    )
    leaf = _CLIENT.load_key2(parent_handle, parent_auth, leaf_blob)
    digest = hashlib.sha1(rng.bytes(8)).digest()
    signature = _CLIENT.sign(leaf, leaf_auth, digest)
    assert _CLIENT.get_pub_key(leaf, leaf_auth).verify_sha1(digest, signature)
    for handle in [leaf] + handles[::-1]:
        _CLIENT.evict_key(handle)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(["oiap", "use", "drop"]), max_size=12))
def test_session_lifecycle_never_wedges(script):
    """Arbitrary open/use/drop session interleavings leave the device able
    to serve a fresh authorized command."""
    live = []
    for action in script:
        if action == "oiap":
            try:
                live.append(_CLIENT.oiap())
            except TpmError:
                pass  # table full is legal
        elif action == "use" and live:
            # Use-and-discard via a PCR read with auth (open NV-free path):
            session = live.pop()
            _CLIENT.flush_session(session)
        elif action == "drop" and live:
            live.pop()  # leak it (client forgets; device still holds it)
    # The device must still serve a full authorized flow.
    blob = _CLIENT.seal(TPM_KH_SRK, b"S" * 20, b"x", b"D" * 20)
    assert _CLIENT.unseal(TPM_KH_SRK, b"S" * 20, blob, b"D" * 20) == b"x"
    # Clean up leaked sessions so later examples have room.
    _DEVICE.state.sessions.flush_all()


@settings(max_examples=15, deadline=None)
@given(auth20, auth20)
def test_ownership_lifecycle_total(owner, srk):
    """Take-ownership works with any auth pair, then OwnerClear resets."""
    device, client = _fresh_owned(owner + srk, owner, srk)
    assert device.state.flags.owned
    blob = client.seal(TPM_KH_SRK, srk, b"data", b"D" * 20)
    assert client.unseal(TPM_KH_SRK, srk, blob, b"D" * 20) == b"data"
    client.owner_clear(owner)
    assert not device.state.flags.owned
