"""Property tests: crypto substrate invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kdf import derive_key
from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import generate_keypair
from repro.crypto.symmetric import SymmetricKey
from repro.util.errors import CryptoError

# One key pair for the whole module: keygen is the expensive part and the
# properties quantify over messages, not keys.
KEYPAIR = generate_keypair(512, RandomSource(b"prop-rsa"))


@given(st.binary(min_size=20, max_size=20))
def test_rsa_sign_verify_total(digest):
    signature = KEYPAIR.sign_sha1(digest)
    assert KEYPAIR.public.verify_sha1(digest, signature)


@given(st.binary(min_size=20, max_size=20), st.binary(min_size=20, max_size=20))
def test_rsa_signature_binds_digest(d1, d2):
    signature = KEYPAIR.sign_sha1(d1)
    assert KEYPAIR.public.verify_sha1(d2, signature) == (d1 == d2)


@given(st.binary(min_size=1, max_size=53), st.integers(0, 2**32 - 1))
def test_rsa_encrypt_decrypt_total(plaintext, seed):
    rng = RandomSource(seed)
    assert KEYPAIR.decrypt(KEYPAIR.public.encrypt(plaintext, rng)) == plaintext


@given(st.binary(max_size=2048), st.integers(0, 2**32 - 1))
def test_symmetric_roundtrip_total(plaintext, seed):
    rng = RandomSource(seed)
    key = SymmetricKey.generate(rng)
    assert key.decrypt(key.encrypt(plaintext, rng)) == plaintext


@given(
    st.binary(min_size=1, max_size=256),
    st.integers(0, 255),
    st.integers(0, 2**32 - 1),
)
def test_symmetric_any_flip_detected(plaintext, flip_at, seed):
    """Flipping any ciphertext byte breaks authentication."""
    rng = RandomSource(seed)
    key = SymmetricKey.generate(rng)
    blob = key.encrypt(plaintext, rng)
    idx = flip_at % len(blob.ciphertext)
    from repro.crypto.symmetric import EncryptedBlob

    tampered = EncryptedBlob(
        nonce=blob.nonce,
        ciphertext=(
            blob.ciphertext[:idx]
            + bytes([blob.ciphertext[idx] ^ 0x01])
            + blob.ciphertext[idx + 1 :]
        ),
        tag=blob.tag,
    )
    with pytest.raises(CryptoError):
        key.decrypt(tampered)


@given(
    st.binary(min_size=1, max_size=64),
    st.binary(max_size=32),
    st.binary(max_size=32),
    st.integers(1, 128),
)
def test_kdf_deterministic_and_sized(secret, salt, info, length):
    a = derive_key(secret, salt, info, length)
    b = derive_key(secret, salt, info, length)
    assert a == b
    assert len(a) == length


@given(st.binary(min_size=1, max_size=32), st.binary(min_size=1, max_size=32))
def test_kdf_info_separation(info1, info2):
    k1 = derive_key(b"root", b"salt", info1)
    k2 = derive_key(b"root", b"salt", info2)
    assert (k1 == k2) == (info1 == info2)


@given(st.integers(0, 2**64 - 1), st.integers(1, 512))
def test_random_source_reproducible(seed, count):
    assert RandomSource(seed).bytes(count) == RandomSource(seed).bytes(count)


@given(st.integers(0, 2**32 - 1), st.integers(1, 10_000))
def test_randint_below_uniform_support(seed, bound):
    value = RandomSource(seed).randint_below(bound)
    assert 0 <= value < bound


@given(st.integers(0, 2**32 - 1), st.lists(st.integers(), min_size=1, max_size=50))
def test_shuffle_is_permutation(seed, items):
    shuffled = RandomSource(seed).shuffle(list(items))
    assert sorted(shuffled) == sorted(items)
