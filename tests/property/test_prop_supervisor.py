"""Property tests for the supervision layer (satellite of the resilience
PR).

Two levels:

* **State machine** — a randomized stream of watchdog signals plus
  supervisor-style restart outcomes can never produce a transition
  outside :data:`~repro.resilience.health.LEGAL_TRANSITIONS`, and
  ``failed`` is inescapable.

* **Platform ledger** — a randomized interleaving of single commands,
  oversized bursts, wedge storms and probe flaps against a supervised
  platform yields exactly one well-formed response per submitted frame
  (shed, refused, degraded or served — never a silent drop), while the
  guest's health history stays inside the legal transition set.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AccessMode
from repro.faults import FaultInjector, FaultKind, FaultPlan, injector_scope, spec
from repro.harness.builder import build_platform, fresh_timing_context
from repro.resilience import (
    LEGAL_TRANSITIONS,
    HealthState,
    HealthThresholds,
    InstanceHealth,
)
from repro.tpm import marshal
from repro.tpm.constants import (
    TPM_AUTHFAIL,
    TPM_FAIL,
    TPM_ORD_Extend,
    TPM_ORD_PcrRead,
    TPM_RESOURCES,
    TPM_SUCCESS,
)
from repro.util.errors import ReproError

_KNOWN_CODES = {TPM_SUCCESS, TPM_FAIL, TPM_AUTHFAIL, TPM_RESOURCES}


def _pcr_read_wire(index: int = 0) -> bytes:
    return marshal.build_command(TPM_ORD_PcrRead, index.to_bytes(4, "big"))


def _extend_wire(index: int = 0) -> bytes:
    return marshal.build_command(
        TPM_ORD_Extend, index.to_bytes(4, "big") + b"\x5a" * 20
    )


# -- level 1: the bare state machine ------------------------------------------------

_SIGNAL = st.one_of(
    st.sampled_from(["retry-exhausted", "tpm-fail", "deadline-miss",
                     "success"]),
    # Supervisor-style restart outcomes, applied only when quarantined.
    st.sampled_from(["restart-ok", "restart-flap", "restart-fail"]),
)


@settings(max_examples=200, deadline=None)
@given(
    signals=st.lists(_SIGNAL, min_size=1, max_size=60),
    degrade_after=st.integers(1, 3),
    quarantine_after=st.integers(2, 6),
    recover_after=st.integers(1, 4),
)
def test_signal_streams_never_leave_the_legal_transition_set(
    signals, degrade_after, quarantine_after, recover_after
):
    record = InstanceHealth(
        "vm-prop", 1,
        thresholds=HealthThresholds(
            degrade_after=degrade_after,
            quarantine_after=max(quarantine_after, degrade_after + 1),
            recover_after=recover_after,
        ),
    )
    failed_seen = False
    for signal in signals:
        if record.state is HealthState.QUARANTINED:
            # Only the supervisor's restart legs leave quarantine.
            if signal == "restart-ok":
                record.transition(HealthState.RESTARTING, "prop")
                record.transition(HealthState.HEALTHY, "prop")
            elif signal == "restart-flap":
                record.transition(HealthState.RESTARTING, "prop")
                record.transition(HealthState.QUARANTINED, "prop")
            elif signal == "restart-fail":
                record.transition(HealthState.RESTARTING, "prop")
                record.transition(HealthState.FAILED, "prop")
            else:
                # Watchdog signals in quarantine are recorded, not acted on.
                if signal == "success":
                    record.note_success()
                else:
                    record.note_failure(signal)
                assert record.state in (HealthState.QUARANTINED,)
        elif record.terminal:
            failed_seen = True
            # Nothing a signal does may resurrect a failed instance.
            if signal == "success":
                record.note_success()
            elif signal in ("retry-exhausted", "tpm-fail", "deadline-miss"):
                record.note_failure(signal)
            assert record.state is HealthState.FAILED
        else:
            if signal == "success":
                record.note_success()
            elif signal in ("retry-exhausted", "tpm-fail", "deadline-miss"):
                record.note_failure(signal)
            # restart-* outside quarantine is a supervisor no-op.
    # The invariant: every recorded transition is in the closed set.
    for frm, to, _cause in record.history:
        assert (frm, to) in LEGAL_TRANSITIONS
    if failed_seen:
        assert record.state is HealthState.FAILED


# -- level 2: the full supervised platform -----------------------------------------

_ACTION = st.one_of(
    st.tuples(st.just("read"), st.integers(0, 15)),
    st.tuples(st.just("extend"), st.integers(0, 15)),
    st.tuples(st.just("burst"), st.integers(2, 24)),
)


@settings(max_examples=15, deadline=None)
@given(
    actions=st.lists(_ACTION, min_size=5, max_size=40),
    wedge_at=st.sets(st.integers(0, 120), max_size=30),
    flap_at=st.sets(st.integers(0, 3), max_size=2),
    seed=st.integers(0, 2**16),
)
def test_every_submitted_frame_gets_exactly_one_wellformed_response(
    actions, wedge_at, flap_at, seed
):
    fresh_timing_context()
    platform = build_platform(AccessMode.IMPROVED, seed=seed, name="prop-sup")
    guest = platform.add_guest("prop-guest")
    platform.manager.save_all()  # the checkpoint restarts restore from
    supervisor = platform.enable_supervision(
        thresholds=HealthThresholds(degrade_after=1, quarantine_after=2),
        breaker_cooldown_us=500.0,
    )
    specs = []
    if wedge_at:
        specs.append(
            spec(FaultKind.WEDGE, at=tuple(sorted(wedge_at)),
                 match={"device": f"vtpm{guest.instance_id}"})
        )
    specs.append(
        spec(FaultKind.FLAP, at=tuple(sorted(flap_at)) or (10_000,))
    )
    injector = FaultInjector(
        FaultPlan(name="prop", seed=seed, specs=tuple(specs)),
        audit=platform.audit,
    )

    submitted = 0
    responses = []
    with injector_scope(injector):
        for action in actions:
            if action[0] == "read":
                submitted += 1
                responses.append(
                    guest.frontend.transport(_pcr_read_wire(action[1]))
                )
            elif action[0] == "extend":
                submitted += 1
                responses.append(
                    guest.frontend.transport(_extend_wire(action[1]))
                )
            else:
                burst = [_pcr_read_wire(i % 16) for i in range(action[1])]
                submitted += len(burst)
                responses.extend(guest.frontend.transport_batch(burst))
        supervisor.drain()

    # Exactly one response per submitted frame...
    assert len(responses) == submitted
    # ...and every one is a well-formed frame with a known return code.
    for response in responses:
        try:
            parsed = marshal.parse_response(response)
        except ReproError as exc:  # pragma: no cover - failure reporting
            raise AssertionError(f"malformed response {response!r}: {exc}")
        assert parsed.return_code in _KNOWN_CODES

    # The health history stayed inside the legal set, whatever happened.
    record = supervisor.record_for(guest.domain.uuid)
    for frm, to, _cause in record.history:
        assert (frm, to) in LEGAL_TRANSITIONS
    # And the run settled: healthy with a closed breaker, or failed.
    assert supervisor.settled()
