"""Property tests: vTPM migration and monitor/policy consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audit import AuditLog
from repro.core.config import AccessControlConfig, AccessMode
from repro.core.identity import IdentityRegistry
from repro.core.monitor import AccessControlMonitor
from repro.core.policy import CommandClass, PolicyEngine, classify_ordinal
from repro.crypto.random_source import RandomSource
from repro.tpm import marshal
from repro.tpm.dispatch import registered_ordinals
from repro.xen.hypervisor import Xen

ORDINALS = sorted(registered_ordinals())

# -- monitor/policy consistency ------------------------------------------------

_XEN = Xen(RandomSource(b"prop-mon"))
_GUESTS = [_XEN.create_domain(f"pg{i}", f"kernel-{i}".encode()) for i in range(3)]


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 2),          # caller index
    st.integers(0, 2),          # instance owner index
    st.sampled_from(ORDINALS),
    st.sampled_from([c for c in CommandClass if c is not CommandClass.UNKNOWN]),
)
def test_monitor_decision_matches_ground_truth(caller_idx, owner_idx, ordinal,
                                               granted_class):
    """The monitor allows iff (caller is the bound identity) AND (the
    granted class covers the ordinal) — for every combination."""
    identities = IdentityRegistry()
    policy = PolicyEngine()
    monitor = AccessControlMonitor(identities, policy, AuditLog())
    ids = [identities.register(g) for g in _GUESTS]
    owner_hex = ids[owner_idx].hex
    policy.add_rule(owner_hex, 1, granted_class)
    caller = _GUESTS[caller_idx]
    wire = marshal.build_command(ordinal, b"")
    verdict = monitor.authorize(caller, 1, owner_hex, wire)
    expected = (
        caller_idx == owner_idx
        and classify_ordinal(ordinal) is granted_class
    )
    assert verdict.allowed == expected, (verdict.reason, ordinal)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(ORDINALS), st.booleans(), st.booleans(), st.booleans())
def test_monitor_config_toggles_are_independent(ordinal, identity_on,
                                                policy_on, audit_on):
    """Any combination of component toggles yields a coherent decision and
    audits exactly when audit is on."""
    identities = IdentityRegistry()
    policy = PolicyEngine()
    audit = AuditLog()
    config = AccessControlConfig(
        identity_check=identity_on, policy_check=policy_on, audit=audit_on,
        protect_memory=False, seal_storage=False,
    )
    monitor = AccessControlMonitor(identities, policy, audit, config)
    identity = identities.register(_GUESTS[0])
    monitor.on_instance_created(1, identity.hex)
    wire = marshal.build_command(ordinal, b"")
    verdict = monitor.authorize(_GUESTS[0], 1, identity.hex, wire)
    if policy_on:
        # grant_owner covers every implemented ordinal
        assert verdict.allowed
    else:
        assert verdict.allowed  # nothing left to deny a bound caller
    assert (len(audit) > 0) == audit_on


# -- migration totality over state contents ----------------------------------------


@settings(max_examples=8, deadline=None)
@given(
    st.binary(min_size=0, max_size=512),
    st.lists(st.tuples(st.integers(0, 15),
                       st.binary(min_size=20, max_size=20)), max_size=4),
    st.integers(0, 2**16),
)
def test_sealed_migration_total_over_state(nv_payload, extends, seed):
    """Whatever the instance state contains, sealed migration moves it
    bit-for-bit and leaks none of it on the wire."""
    from repro.harness.builder import build_platform
    from repro.attacks.memdump import secrets_found

    source = build_platform(AccessMode.IMPROVED, seed=seed, name=f"ps-{seed}")
    destination = build_platform(
        AccessMode.IMPROVED, seed=seed + 1, name=f"pd-{seed}"
    )
    guest = source.add_guest("migrant")
    for index, digest in extends:
        guest.client.extend(index, digest)
    if nv_payload:
        ek = guest.client.read_pubek()
        guest.client.take_ownership(b"O" * 20, b"S" * 20, ek)
        from repro.tpm.nvram import NV_PER_AUTHWRITE

        guest.client.nv_define(
            b"O" * 20, 0x40, len(nv_payload), NV_PER_AUTHWRITE, b"N" * 20
        )
        guest.client.nv_write(b"N" * 20, 0x40, 0, nv_payload)
    instance = source.manager.instance(guest.instance_id)
    state_before = instance.device.save_state_blob()
    secrets = instance.device.state.secret_material()
    target_vm = destination.xen.create_domain(
        guest.domain.name, kernel_image=guest.domain.kernel_image,
        config=dict(guest.domain.config),
    )
    offer = destination.migration.prepare_target()
    package = source.migration.export_sealed(guest.domain.uuid, offer)
    assert not secrets_found(package.payload, secrets)
    moved = destination.migration.import_sealed(package, target_vm)
    assert moved.device.save_state_blob() == state_before
