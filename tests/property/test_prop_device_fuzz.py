"""Property tests: the TPM device is total over arbitrary wire input.

Whatever bytes arrive — random garbage, truncated frames, valid headers
with garbage params — the device must always return a parseable response
frame and never raise, exactly like hardware.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.random_source import RandomSource
from repro.tpm import marshal
from repro.tpm.constants import TPM_SUCCESS
from repro.tpm.device import TpmDevice
from repro.tpm.dispatch import registered_ordinals

# One shared device: the property is about input handling, not state.
_DEVICE = TpmDevice(RandomSource(b"fuzz"), key_bits=512)
_DEVICE.power_on()

ORDINALS = sorted(registered_ordinals())


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=256))
def test_raw_garbage_always_answered(garbage):
    response = _DEVICE.execute(garbage)
    parsed = marshal.parse_response(response)
    assert parsed.return_code != TPM_SUCCESS or garbage[:2] in (
        b"\x00\xc1",
        b"\x00\xc2",
    )


@settings(max_examples=200, deadline=None)
@given(st.sampled_from(ORDINALS), st.binary(max_size=128))
def test_valid_header_garbage_params_always_answered(ordinal, params):
    wire = marshal.build_command(ordinal, params)
    response = _DEVICE.execute(wire)
    marshal.parse_response(response)  # must parse


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(ORDINALS),
    st.binary(max_size=64),
    st.integers(0, 0xFFFFFFFF),
    st.binary(min_size=20, max_size=20),
    st.booleans(),
    st.binary(min_size=20, max_size=20),
)
def test_auth_frames_with_garbage_always_answered(
    ordinal, params, handle, nonce, cont, auth
):
    trailer = marshal.AuthTrailer(
        handle=handle, nonce_odd=nonce, continue_session=cont, auth_value=auth
    )
    wire = marshal.build_command(ordinal, params, auth=trailer)
    response = _DEVICE.execute(wire)
    marshal.parse_response(response)


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=64))
def test_device_state_not_corrupted_by_garbage(garbage):
    """After arbitrary garbage, a legitimate command still works."""
    _DEVICE.execute(garbage)
    wire = marshal.build_command(0x46, (8).to_bytes(4, "big"))  # GetRandom
    parsed = marshal.parse_response(_DEVICE.execute(wire))
    assert parsed.return_code == TPM_SUCCESS
