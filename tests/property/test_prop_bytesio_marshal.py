"""Property tests: wire-format round-trips never lose or invent bytes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpm import marshal
from repro.tpm.marshal import AuthTrailer
from repro.util.bytesio import ByteReader, ByteWriter

u8 = st.integers(0, 0xFF)
u16 = st.integers(0, 0xFFFF)
u32 = st.integers(0, 0xFFFFFFFF)
u64 = st.integers(0, 0xFFFFFFFFFFFFFFFF)
blob = st.binary(max_size=512)


@given(u8, u16, u32, u64, blob)
def test_writer_reader_roundtrip(a, b, c, d, data):
    wire = (
        ByteWriter().u8(a).u16(b).u32(c).u64(d).sized(data).getvalue()
    )
    r = ByteReader(wire)
    assert r.u8() == a
    assert r.u16() == b
    assert r.u32() == c
    assert r.u64() == d
    assert r.sized() == data
    r.expect_end()


@given(st.lists(blob, max_size=10))
def test_sized_sequence_roundtrip(blobs):
    w = ByteWriter()
    for item in blobs:
        w.sized(item)
    r = ByteReader(w.getvalue())
    assert [r.sized() for _ in blobs] == blobs
    r.expect_end()


@given(u32, blob)
def test_plain_command_roundtrip(ordinal, params):
    parsed = marshal.parse_command(marshal.build_command(ordinal, params))
    assert parsed.ordinal == ordinal
    assert parsed.params == params
    assert parsed.auth is None


@given(
    u32,
    blob,
    u32,
    st.binary(min_size=20, max_size=20),
    st.booleans(),
    st.binary(min_size=20, max_size=20),
)
def test_auth_command_roundtrip(ordinal, params, handle, nonce, cont, auth):
    trailer = AuthTrailer(
        handle=handle, nonce_odd=nonce, continue_session=cont, auth_value=auth
    )
    parsed = marshal.parse_command(
        marshal.build_command(ordinal, params, auth=trailer)
    )
    assert parsed.ordinal == ordinal
    assert parsed.params == params
    assert parsed.auth == trailer


@given(u32, blob)
def test_plain_response_roundtrip(code, params):
    parsed = marshal.parse_response(marshal.build_response(code, params))
    assert parsed.return_code == code
    assert parsed.params == params


@given(
    u32, blob, st.binary(min_size=20, max_size=20), st.booleans(),
    st.binary(min_size=20, max_size=20),
)
def test_auth_response_roundtrip(code, params, nonce, cont, resauth):
    parsed = marshal.parse_response(
        marshal.build_response(
            code, params, nonce_even=nonce, continue_session=cont,
            response_auth=resauth,
        )
    )
    assert parsed.return_code == code
    assert parsed.params == params
    assert parsed.nonce_even == nonce
    assert parsed.continue_session == cont
    assert parsed.response_auth == resauth


@given(st.binary(max_size=64))
def test_parser_never_crashes_on_garbage(garbage):
    """Any byte string either parses or raises a library error — never an
    unexpected exception type."""
    from repro.util.errors import MarshalError, TpmError

    try:
        marshal.parse_command(garbage)
    except (MarshalError, TpmError):
        pass
    try:
        marshal.parse_response(garbage)
    except (MarshalError, TpmError):
        pass
