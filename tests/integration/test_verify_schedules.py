"""Interleaving-sensitivity regression pack.

Three pinned orderings where the outcome genuinely depends on the
schedule — the races the explorer's DPOR swaps exist to probe.  Each is
run in both orders with the expected outcome asserted per order, so a
regression that makes the pipeline order-insensitive in the wrong way
(or order-sensitive in a new way) fails a named test instead of a
random exploration round.

1. revocation vs cached allow — a revocation racing a decision-cache
   hit must invalidate the cached verdict (the stale-epoch bug hook
   proves the test can see the difference);
2. migration offer vs endpoint restart — an offer redeemed before a
   destination crash succeeds, after it fails closed, and the source
   copy survives either order;
3. breaker open vs admission shed — an oversized burst racing a forced
   breaker open sheds for different *reasons* per order, but both
   orders keep zero-silent-drop and the turbulent accept set.
"""

from __future__ import annotations

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform, fresh_timing_context
from repro.tpm import marshal
from repro.tpm.constants import TPM_RESOURCES, TPM_SUCCESS
from repro.util.errors import MigrationError, VtpmError
from repro.verify.explorer import ScheduleRunner, Step
from repro.verify.model import TURBULENT_CODES


class TestRevocationVsCachedAllow:
    """Schedule: extend (warms the decision cache) → revoke → extend."""

    WARM_FIRST = [
        Step(0, "extend", 3),   # allow, cached
        Step(0, "revoke", 0),   # arg 0 -> MEASURE
        Step(0, "extend", 3),   # must now deny despite the cached allow
    ]
    REVOKE_FIRST = [
        Step(0, "revoke", 0),
        Step(0, "extend", 3),   # computed fresh: deny
        Step(0, "grant", 0),
        Step(0, "extend", 3),   # allow again
    ]

    def test_both_orders_conform(self):
        for schedule in (self.WARM_FIRST, self.REVOKE_FIRST):
            runner = ScheduleRunner(guests=2, seed=301)
            assert runner.run(schedule) == []

    def test_stale_epoch_bug_is_order_sensitive(self):
        """The injected cache bug fails exactly the warm-first order.

        With the policy component of the cache epoch frozen, a verdict
        cached *before* the revocation survives it — so warm-first
        produces an oracle mismatch while revoke-first (nothing cached
        to go stale) still conforms.  This is the asymmetry that makes
        the race worth exploring.
        """
        from repro.core import monitor as monitor_mod

        previous = monitor_mod.INJECT_STALE_POLICY_EPOCH
        monitor_mod.INJECT_STALE_POLICY_EPOCH = True
        try:
            runner = ScheduleRunner(guests=2, seed=302)
            violations = runner.run(self.WARM_FIRST)
            assert violations, "stale cached allow must violate the oracle"
            assert violations[0].kind in ("oracle-mismatch", "denial-count")

            clean = ScheduleRunner(guests=2, seed=303)
            assert clean.run(self.REVOKE_FIRST) == []
        finally:
            monitor_mod.INJECT_STALE_POLICY_EPOCH = previous


class TestMigrationOfferVsRestart:
    """The destination crashing races the offer's redemption."""

    @staticmethod
    def _pair():
        fresh_timing_context()
        source = build_platform(AccessMode.IMPROVED, seed=311, name="vs-src")
        destination = build_platform(
            AccessMode.IMPROVED, seed=312, name="vs-dst"
        )
        guest = source.add_guest("mover")
        guest.client.extend(5, b"\x55" * 20)
        target_vm = destination.xen.create_domain(
            guest.domain.name,
            kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        return source, destination, guest, target_vm

    def test_offer_redeemed_before_crash_moves_state(self):
        source, destination, guest, target_vm = self._pair()
        offer = destination.migration.prepare_target()
        txn = source.migration.begin_export_sealed(guest.domain.uuid, offer)
        instance = destination.migration.import_sealed(txn.package, target_vm)
        source.migration.commit_export(txn)
        # State moved; the source copy is gone.
        response = destination.manager.handle_command(
            target_vm.domid, instance.instance_id,
            marshal.build_command(
                0x15, (5).to_bytes(4, "big")  # TPM_ORD_PcrRead
            ),
        )
        assert marshal.parse_response(response).return_code == TPM_SUCCESS
        with pytest.raises(VtpmError):
            source.manager.instance_for_vm(guest.domain.uuid)

    def test_crash_before_redemption_fails_closed_and_source_survives(self):
        source, destination, guest, target_vm = self._pair()
        offer = destination.migration.prepare_target()
        txn = source.migration.begin_export_sealed(guest.domain.uuid, offer)
        destination.migration.crash()  # restart wipes in-memory offers
        with pytest.raises(MigrationError, match="offer"):
            destination.migration.import_sealed(txn.package, target_vm)
        source.migration.abort_export(txn)
        # The source instance is intact and still serves its guest.
        assert guest.client.pcr_read(5) is not None

    def test_restart_between_offer_and_export_still_exports(self):
        # A *source* manager restart between offer mint and export: the
        # instance comes back under a new id and the export follows it.
        source, destination, guest, target_vm = self._pair()
        offer = destination.migration.prepare_target()
        source.manager.save_all()
        source.restart_manager(clean=True)
        txn = source.migration.begin_export_sealed(guest.domain.uuid, offer)
        instance = destination.migration.import_sealed(txn.package, target_vm)
        source.migration.commit_export(txn)
        assert instance.instance_id is not None


class TestBreakerOpenVsAdmissionShed:
    """An oversized burst racing a forced breaker open."""

    BURST = 8  # max_depth is 4: the tail of the burst must depth-shed

    @staticmethod
    def _platform():
        from repro.resilience import AdmissionConfig

        fresh_timing_context()
        platform = build_platform(
            AccessMode.IMPROVED, seed=321, name="vs-brk"
        )
        guest = platform.add_guest("g")
        supervisor = platform.enable_supervision(
            admission=AdmissionConfig(max_depth=4, deadline_us=1e9),
        )
        return platform, guest, supervisor

    @classmethod
    def _burst(cls, guest):
        wires = [
            marshal.build_command(0x15, (i % 8).to_bytes(4, "big"))
            for i in range(cls.BURST)
        ]
        return guest.frontend.transport_batch(wires)

    def test_burst_before_breaker_open_sheds_on_depth(self):
        platform, guest, supervisor = self._platform()
        responses = self._burst(guest)
        supervisor.breaker_for(guest.domain.uuid).force_open()
        single = guest.frontend.transport(
            marshal.build_command(0x15, (0).to_bytes(4, "big"))
        )
        codes = [marshal.parse_response(r).return_code for r in responses]
        assert codes.count(TPM_SUCCESS) == 4   # admitted up to max_depth
        assert codes.count(TPM_RESOURCES) == self.BURST - 4
        shed = supervisor.admission_for(guest.domain.uuid).shed_counts
        assert shed.get("depth", 0) == self.BURST - 4
        # The post-open single frame sheds for the breaker, not depth.
        assert marshal.parse_response(single).return_code == TPM_RESOURCES
        assert shed.get("breaker", 0) == 1

    def test_breaker_open_before_burst_sheds_everything_on_breaker(self):
        platform, guest, supervisor = self._platform()
        supervisor.breaker_for(guest.domain.uuid).force_open()
        responses = self._burst(guest)
        codes = [marshal.parse_response(r).return_code for r in responses]
        # No frame was admitted, so the depth bound never engages: the
        # whole burst sheds for the breaker.
        assert codes == [TPM_RESOURCES] * self.BURST
        shed = supervisor.admission_for(guest.domain.uuid).shed_counts
        assert shed.get("breaker", 0) == self.BURST
        assert shed.get("depth", 0) == 0

    def test_both_orders_keep_turbulent_accept_set(self):
        for open_first in (False, True):
            platform, guest, supervisor = self._platform()
            if open_first:
                supervisor.breaker_for(guest.domain.uuid).force_open()
            responses = self._burst(guest)
            if not open_first:
                supervisor.breaker_for(guest.domain.uuid).force_open()
                responses.append(guest.frontend.transport(
                    marshal.build_command(0x15, (0).to_bytes(4, "big"))
                ))
            # Zero silent drops, and every answer within the degrade
            # envelope the reference model accepts for a turbulent guest.
            assert all(responses)
            codes = {marshal.parse_response(r).return_code for r in responses}
            assert codes <= TURBULENT_CODES
