"""Integration: the open-loop latency-under-load experiment."""

from repro.harness.loadtest import run_latency_under_load


class TestLatencyUnderLoad:
    def test_queueing_grows_with_load(self):
        result = run_latency_under_load(
            offered_rates=(5_000, 30_000), guests=3, duration_s=0.2
        )
        baseline = result.series("baseline")
        assert baseline[-1].latency.mean > baseline[0].latency.mean
        assert baseline[-1].latency.p95 > baseline[0].latency.p95

    def test_improved_above_baseline_every_load(self):
        result = run_latency_under_load(
            offered_rates=(5_000, 25_000), guests=3, duration_s=0.2
        )
        for b, i in zip(result.series("baseline"), result.series("improved")):
            assert i.latency.mean > b.latency.mean
            assert i.latency.mean / b.latency.mean < 1.6

    def test_identical_arrivals_across_regimes(self):
        result = run_latency_under_load(
            offered_rates=(10_000,), guests=2, duration_s=0.15
        )
        baseline, improved = result.series("baseline"), result.series("improved")
        assert baseline[0].completed == improved[0].completed > 0

    def test_deterministic(self):
        a = run_latency_under_load(offered_rates=(8_000,), guests=2,
                                   duration_s=0.1)
        b = run_latency_under_load(offered_rates=(8_000,), guests=2,
                                   duration_s=0.1)
        assert a.rows() == b.rows()
