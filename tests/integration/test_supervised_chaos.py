"""Acceptance: the supervised chaos run satisfies the resilience oracles.

The ISSUE's acceptance criteria, as tests: a seeded chaos run injecting
instance wedges, restart flaps and queue overload must end with (a) zero
silently dropped commands — every submitted command resolved to exactly
one well-formed response frame, (b) every quarantined instance either
restored-and-reattested or explicitly failed, (c) state digests of
unaffected guests byte-identical to a fault-free run, and (d) the
breaker's open/close sequence identical across runs with the same seed.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultKind
from repro.harness.chaos import (
    run_supervised_chaos,
    run_supervised_chaos_demo,
    supervised_chaos_plan,
)
from repro.tpm.constants import TPM_FAIL, TPM_RESOURCES, TPM_SUCCESS

SEED = 2026
COMMANDS = 300  # enough for the full wedge → restart → re-close arc


@pytest.fixture(scope="module")
def demo():
    return run_supervised_chaos_demo(seed=SEED, commands=COMMANDS)


class TestSupervisedChaosAcceptance:
    def test_demo_oracles_hold(self, demo):
        assert demo["zero_dropped"]
        assert demo["deterministic"]

    def test_plan_exercises_the_new_fault_kinds(self, demo):
        counts = demo["chaotic"].fault_counts
        assert counts.get(FaultKind.WEDGE.value, 0) > 0
        assert counts.get(FaultKind.FLAP.value, 0) > 0

    def test_zero_silent_drops(self, demo):
        chaotic = demo["chaotic"]
        assert chaotic.answered == chaotic.submitted
        assert chaotic.malformed == 0
        # Every response code is one the protocol defines for this path.
        assert set(chaotic.response_codes) <= {
            TPM_SUCCESS, TPM_FAIL, TPM_RESOURCES
        }

    def test_quarantined_instance_recovered_and_reattested(self, demo):
        victim = demo["chaotic"].health["victim"]
        assert victim["restarts"] >= 1
        assert victim["state"] in ("healthy", "failed")
        transitions = victim["transitions"]
        # The full supervised arc, including the deliberate first flap.
        assert any("quarantined->restarting" in t for t in transitions)
        assert any("restarting->quarantined[probe-flap]" in t
                   for t in transitions)
        assert any("restarting->healthy[restart-probe-ok]" in t
                   for t in transitions)

    def test_supervision_settles(self, demo):
        assert demo["chaotic"].settled

    def test_unaffected_guests_digests_identical(self, demo):
        clean, chaotic = demo["clean"], demo["chaotic"]
        assert chaotic.digests["anchor"] == clean.digests["anchor"]
        assert chaotic.digests["bursty"] == clean.digests["bursty"]
        # The victim only read after its checkpoint, so even its restored
        # state is byte-identical.
        assert chaotic.digests["victim"] == clean.digests["victim"]

    def test_breaker_sequences_deterministic(self, demo):
        chaotic, replay = demo["chaotic"], demo["replay"]
        assert chaotic.breaker_sequences == replay.breaker_sequences
        victim_states = [
            s for s, _ in chaotic.breaker_sequences["victim"]
        ]
        # open (storm) → half-open (probe) → … → closed (recovered)
        assert victim_states[0] == "open"
        assert victim_states[-1] == "closed"

    def test_overload_shed_on_depth_and_deadline(self, demo):
        shed = demo["chaotic"].shed_counts["bursty"]
        assert shed.get("depth", 0) > 0
        assert shed.get("deadline", 0) > 0
        # The anchor, sending single frames, was never shed.
        assert not demo["chaotic"].shed_counts.get("anchor")

    def test_fault_free_run_sheds_only_overload(self, demo):
        """Without faults, supervision never degrades anyone: the only
        sheds are the bursty guest's own oversized batches."""
        clean = demo["clean"]
        assert clean.total_faults == 0
        assert not clean.shed_counts.get("victim")
        for record in clean.health.values():
            assert record["state"] == "healthy"
            assert record["restarts"] == 0


class TestSupervisedChaosControls:
    def test_different_seed_changes_breaker_schedule(self):
        a = run_supervised_chaos(
            seed=SEED, commands=COMMANDS, plan=supervised_chaos_plan(SEED)
        )
        b = run_supervised_chaos(
            seed=SEED + 1, commands=COMMANDS,
            plan=supervised_chaos_plan(SEED + 1),
        )
        # The arc is the same shape but the jittered cooldowns differ.
        assert a.breaker_sequences["victim"] != b.breaker_sequences["victim"]

    def test_audit_chain_verifies_after_chaos(self):
        report = run_supervised_chaos(
            seed=SEED, commands=COMMANDS, plan=supervised_chaos_plan(SEED)
        )
        assert report.audit_chain_hex
