"""The acceptance demo as a test: 1000 commands under the default chaos
plan, zero state loss, deterministic replay, observable faults."""

from repro.faults import FaultKind
from repro.harness.chaos import (
    default_chaos_plan,
    run_chaos_demo,
    run_chaos_workload,
)


class TestChaosDemo:
    def test_demo_end_to_end(self):
        # run_chaos_demo asserts the claims internally; a clean return IS
        # the acceptance criterion.
        result = run_chaos_demo(seed=2026, commands=1000)
        chaotic = result["chaotic"]
        # ≥4 distinct kinds, including the four named in the acceptance
        # criteria: ring stall, torn write, transient device error and an
        # interrupted migration.
        for kind in (
            FaultKind.RING_STALL,
            FaultKind.STORAGE_TORN_WRITE,
            FaultKind.DEVICE_TRANSIENT,
            FaultKind.MIGRATION_NET_DROP,
        ):
            assert chaotic.fault_counts.get(kind.value, 0) >= 1
        # Observability: per-kind counts, retries and recoveries all land
        # in the metrics recorder; every fault is on the audit chain.
        assert chaotic.metrics_counts.get("fault.retry", 0) == chaotic.retries
        assert (
            chaotic.metrics_counts.get("fault.recovery", 0)
            == chaotic.recoveries
        )
        assert chaotic.audit_fault_records >= chaotic.total_faults
        assert chaotic.mean_recovery_us > 0.0

    def test_default_plans_cover_every_kind(self):
        """Single-host chaos owns the device/storage/migration kinds; the
        cluster plan owns the fleet-scoped ones.  Together: everything."""
        from repro.cluster import default_cluster_plan

        plan = default_chaos_plan(1)
        cluster_plan = default_cluster_plan(1, num_hosts=4, crash_step=8)
        assert set(plan.kinds()) | set(cluster_plan.kinds()) == set(FaultKind)
        assert set(plan.kinds()) & set(cluster_plan.kinds()) == set()

    def test_workload_without_plan_is_fault_free(self):
        report = run_chaos_workload(seed=5, commands=120, plan=None)
        assert report.total_faults == 0
        assert report.retries == 0
        assert report.digests["anchor"] != report.digests["mover"]
