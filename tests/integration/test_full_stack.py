"""Integration: the whole stack, end to end, in both regimes."""

import hashlib

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform
from repro.tpm.constants import TPM_KEY_SIGNING, TPM_KH_SRK
from repro.tpm.pcr import PcrBank, PcrSelection
from repro.tpm.structures import make_quote_info
from repro.util.errors import TpmError

OWNER = b"int-owner-auth!!!!!!"
SRK = b"int-srk-auth!!!!!!!!"
KEY = b"int-key-auth!!!!!!!!"
DATA = b"int-data-auth!!!!!!!"


@pytest.mark.parametrize("mode", [AccessMode.BASELINE, AccessMode.IMPROVED])
class TestFullGuestLifecycle:
    def test_provision_measure_seal_quote(self, mode):
        platform = build_platform(mode, seed=17)
        guest = platform.add_guest("lifecycle")
        client = guest.client

        # Provision.
        ek = client.read_pubek()
        client.take_ownership(OWNER, SRK, ek)

        # Measured boot.
        for pcr, stage in ((8, b"kernel"), (9, b"initrd"), (10, b"app")):
            client.extend(pcr, hashlib.sha1(stage).digest())

        # Seal to state.
        selection = PcrSelection([8, 9, 10])
        values = [client.pcr_read(i) for i in (8, 9, 10)]
        digest = PcrBank.composite_of(selection, values)
        blob = client.seal(TPM_KH_SRK, SRK, b"secret!", DATA, selection, digest)
        assert client.unseal(TPM_KH_SRK, SRK, blob, DATA) == b"secret!"

        # Quote and verify challenger-side.
        key_blob = client.create_wrap_key(TPM_KH_SRK, SRK, KEY, TPM_KEY_SIGNING, 512)
        handle = client.load_key2(TPM_KH_SRK, SRK, key_blob)
        nonce = b"\x5a" * 20
        composite, pcr_values, signature = client.quote(handle, KEY, nonce, [8, 9, 10])
        public = client.get_pub_key(handle, KEY)
        info = make_quote_info(composite, nonce)
        assert public.verify_sha1(hashlib.sha1(info).digest(), signature)
        assert PcrBank.composite_of(selection, pcr_values) == composite

        # Drift breaks both unseal and quote matching.
        client.extend(10, hashlib.sha1(b"tampered").digest())
        with pytest.raises(TpmError):
            client.unseal(TPM_KH_SRK, SRK, blob, DATA)
        composite2, _values2, _sig2 = client.quote(handle, KEY, nonce, [8, 9, 10])
        assert composite2 != composite

    def test_many_guests_independent_hierarchies(self, mode):
        platform = build_platform(mode, seed=18)
        guests = [platform.add_guest(f"vm{i}") for i in range(4)]
        moduli = set()
        for guest in guests:
            ek = guest.client.read_pubek()
            guest.client.take_ownership(OWNER, SRK, ek)
            moduli.add(ek.n)
            guest.client.extend(5, hashlib.sha1(guest.domain.name.encode()).digest())
        assert len(moduli) == 4  # every vTPM has its own EK
        values = {g.domain.name: g.client.pcr_read(5) for g in guests}
        assert len(set(values.values())) == 4

    def test_guest_reboot_with_persisted_vtpm(self, mode):
        platform = build_platform(mode, seed=19)
        guest = platform.add_guest("rebooter")
        ek = guest.client.read_pubek()
        guest.client.take_ownership(OWNER, SRK, ek)
        guest.client.extend(11, b"\x31" * 20)
        expected_pcr = guest.client.pcr_read(11)
        sealed = guest.client.seal(TPM_KH_SRK, SRK, b"survives-reboot", DATA)
        platform.manager.save_instance(guest.instance_id)
        platform.remove_guest("rebooter", persist_vtpm=True)

        rebooted = platform.xen.create_domain(
            "rebooter", kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        rebooted.uuid = guest.domain.uuid  # same VM, same storage key
        if mode is AccessMode.IMPROVED:
            platform.identities.register(rebooted)
        instance = platform.manager.restore_instance(rebooted)
        from repro.tpm.client import TpmClient

        client = TpmClient(
            lambda wire: platform.manager.handle_command(
                rebooted.domid, instance.instance_id, wire
            ),
            platform.rng.fork("reboot-client"),
        )
        assert client.pcr_read(11) == expected_pcr
        assert client.unseal(TPM_KH_SRK, SRK, sealed, DATA) == b"survives-reboot"


class TestRegimeDifferences:
    def test_improved_keeps_disk_ciphertext(self):
        improved = build_platform(AccessMode.IMPROVED, seed=20)
        baseline = build_platform(AccessMode.BASELINE, seed=20)
        for platform in (improved, baseline):
            guest = platform.add_guest("storer")
            ek = guest.client.read_pubek()
            guest.client.take_ownership(OWNER, SRK, ek)
            platform.manager.save_instance(guest.instance_id)
        base_files = baseline.disk.raw_contents()
        impr_files = improved.disk.raw_contents()
        assert any(OWNER in blob for blob in base_files.values())
        assert not any(OWNER in blob for blob in impr_files.values())

    def test_improved_audits_normal_traffic(self):
        platform = build_platform(AccessMode.IMPROVED, seed=21)
        guest = platform.add_guest("audited")
        guest.client.get_random(8)
        guest.client.extend(1, b"\x01" * 20)
        operations = [r.operation for r in platform.audit.records()]
        assert "TPM_GetRandom" in operations
        assert "TPM_Extend" in operations
        assert platform.audit.verify_chain()

    def test_monitor_overhead_is_positive_but_small(self):
        """The core performance claim at the single-command level."""
        import hashlib as _h
        from repro.harness.builder import fresh_timing_context
        from repro.sim.timing import get_context

        elapsed = {}
        for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
            fresh_timing_context()
            platform = build_platform(mode, seed=22)
            guest = platform.add_guest("timer")
            start = get_context().clock.now_us
            for i in range(30):
                guest.client.extend(2, _h.sha1(bytes([i])).digest())
            elapsed[mode.value] = get_context().clock.now_us - start
        assert elapsed["improved"] > elapsed["baseline"]
        overhead = (elapsed["improved"] - elapsed["baseline"]) / elapsed["baseline"]
        assert overhead < 0.25, f"monitor overhead {overhead:.1%} too high"
