"""Acceptance for ``python -m repro analyze`` and the counter-name audit.

Three oracles from the ISSUE:

1. The shipped tree is clean — ``analyze --check`` exits 0 against the
   committed (empty) baseline, so the lints are gates, not advisories.
2. The lints demonstrably *work* — under ``--inject-violation RULE`` the
   same command exits 1 for every registered rule (the analyzer analogue
   of ``verify --inject-bug``).
3. The static name registry matches runtime reality — every counter and
   span name a real chaos run emits is one the analyzer statically
   discovered, and every discovered literal is rooted in a declared
   namespace.  A typo'd literal would fork a series nobody reads; this
   closes that loop from both ends.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import Analyzer, RULES, load_baseline
from repro.analysis.report import default_baseline_path
from repro.analysis.rules.counter_registry import (
    COUNTER_NAMESPACES,
    SPAN_ROOTS,
    collect_metric_literals,
)
from repro.cli import main
from repro.harness.chaos import run_chaos_workload
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace


class TestAnalyzeCheckClean:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["analyze", "--check"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_shipped_tree_is_clean_json(self, capsys):
        assert main(["analyze", "--check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["check"]["clean"] is True
        # Every registered rule actually ran over the real tree.
        assert {rule["id"] for rule in payload["rules"]} == set(RULES)
        assert payload["files"] > 50

    def test_committed_baseline_is_empty(self):
        # The baseline only ever shrinks; the shipped tree starts at zero
        # accepted debt, so --check tolerates nothing.
        assert load_baseline(default_baseline_path()) == []

    def test_suppressions_all_carry_reasons(self, capsys):
        assert main(["analyze", "--check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suppressed"], "expected the documented pragmas"
        for entry in payload["suppressed"]:
            assert entry["reason"], f"pragma without reason: {entry}"
            assert entry["rule"] in RULES


class TestInjectedViolationsFail:
    @pytest.mark.parametrize("rule_id", sorted(RULES))
    def test_each_rule_fires_and_fails_check(self, rule_id, capsys):
        assert main(["analyze", "--check",
                     "--inject-violation", rule_id]) == 1
        out = capsys.readouterr().out
        assert rule_id in out
        assert "::injected" in out

    @pytest.mark.parametrize("rule_id", sorted(RULES))
    def test_single_rule_run_also_fails(self, rule_id, capsys):
        assert main(["analyze", "--check", "--rule", rule_id,
                     "--inject-violation", rule_id]) == 1
        capsys.readouterr()

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        assert main(["analyze", "--rule", "no-such-rule"]) == 2
        assert main(["analyze", "--inject-violation", "no-such-rule"]) == 2
        err = capsys.readouterr().err
        assert "known:" in err


class TestCounterNameAudit:
    """Satellite: cross-check static literals against a live chaos run."""

    @pytest.fixture(scope="class")
    def static_names(self):
        return collect_metric_literals(Analyzer().modules())

    @pytest.fixture(scope="class")
    def runtime_report(self):
        registry = obs_counters.CounterRegistry()
        tracer = obs_trace.Tracer()
        report = run_chaos_workload(
            seed=2026, commands=200, tracer=tracer, counters=registry
        )
        return registry, tracer, report

    def test_runtime_counters_subset_of_static(self, static_names,
                                               runtime_report):
        registry, _, _ = runtime_report
        emitted = {
            line.split(" ")[0].split("{")[0]
            for line in registry.exposition().splitlines()
            if line
        }
        assert emitted, "chaos run emitted no counters"
        unknown = emitted - static_names["counter"]
        assert not unknown, (
            "runtime counter names the analyzer never saw as literals "
            f"(dynamic construction or drift): {sorted(unknown)}"
        )

    def test_runtime_counters_use_declared_namespaces(self, runtime_report):
        registry, _, _ = runtime_report
        for line in registry.exposition().splitlines():
            name = line.split(" ")[0].split("{")[0]
            assert name.split(".", 1)[0] in COUNTER_NAMESPACES, line

    def test_runtime_spans_subset_of_static(self, static_names,
                                            runtime_report):
        _, tracer, _ = runtime_report
        emitted = {
            span.name
            for root in tracer.sink.roots
            for span in root.walk()
        }
        assert emitted, "chaos run recorded no spans"
        unknown = emitted - static_names["span"]
        assert not unknown, (
            f"runtime span names never seen as literals: {sorted(unknown)}"
        )

    def test_static_literals_are_all_declared(self, static_names):
        for name in static_names["counter"]:
            assert name.split(".", 1)[0] in COUNTER_NAMESPACES, name
        for name in static_names["span"]:
            assert name.split(".", 1)[0] in SPAN_ROOTS, name

    def test_hotplug_error_counter_is_discovered(self, static_names):
        # The degraded-path fix from this PR must be visible statically.
        assert "vtpm.hotplug.error" in static_names["counter"]


class TestBaselineWorkflow:
    def test_write_then_check_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["analyze", "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--check",
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_stale_baseline_entry_fails_check(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "findings": [{
                "fingerprint": "fail-closed:repro/ghost.py:gone",
                "rule": "fail-closed",
                "path": "repro/ghost.py",
                "message": "gone",
            }],
        }))
        assert main(["analyze", "--check",
                     "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale" in out
