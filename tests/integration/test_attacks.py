"""Integration: the attack matrix and individual attack mechanics."""

import pytest

from repro.attacks.scenarios import AttackOutcome, run_attack_matrix
from repro.core.config import AccessMode
from repro.harness.builder import build_platform

EXPECTED = {
    "mem-dump-manager": ("succeeded", "blocked"),
    "cpu-dump": ("succeeded", "blocked"),
    "rogue-rebind": ("succeeded", "blocked"),
    "replay": ("blocked", "blocked"),
    "state-theft": ("succeeded", "blocked"),
    "foreign-restore": ("succeeded", "blocked"),
    "migration-intercept": ("succeeded", "blocked"),
}


class TestAttackMatrix:
    @pytest.fixture(scope="class")
    def matrices(self):
        baseline = {r.attack: r for r in run_attack_matrix(AccessMode.BASELINE, seed=42)}
        improved = {r.attack: r for r in run_attack_matrix(AccessMode.IMPROVED, seed=42)}
        return baseline, improved

    def test_every_attack_modelled(self, matrices):
        baseline, improved = matrices
        assert set(baseline) == set(EXPECTED) == set(improved)

    @pytest.mark.parametrize("attack", sorted(EXPECTED))
    def test_outcome_shape(self, matrices, attack):
        baseline, improved = matrices
        expected_b, expected_i = EXPECTED[attack]
        assert baseline[attack].outcome.value == expected_b, baseline[attack].detail
        assert improved[attack].outcome.value == expected_i, improved[attack].detail

    def test_reports_carry_details(self, matrices):
        baseline, improved = matrices
        for report in list(baseline.values()) + list(improved.values()):
            assert report.detail
            assert report.description


class TestAttackMechanics:
    def test_memdump_sees_exact_secret_strings(self):
        """The baseline leak is the actual key material, not a fluke."""
        from repro.attacks.memdump import MemoryDumpAttack, secrets_found

        platform = build_platform(AccessMode.BASELINE, seed=60)
        guest = platform.add_guest("victim")
        ek = guest.client.read_pubek()
        guest.client.take_ownership(b"O" * 20, b"S" * 20, ek)
        instance = platform.manager.instance(guest.instance_id)
        image = b"".join(
            platform.dom0_hypercalls().dump_domain_memory(0).values()
        )
        hits = secrets_found(image, instance.device.state.secret_material())
        srk_private = instance.device.state.keys.srk.keypair.serialize_private()
        assert srk_private in hits

    def test_rogue_rebind_detected_in_audit(self):
        from repro.attacks.rogue import RogueRebindAttack

        platform = build_platform(AccessMode.IMPROVED, seed=61)
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        attack = RogueRebindAttack(platform, attacker=attacker, victim=victim)
        succeeded, _detail = attack.run()
        assert not succeeded
        denials = platform.audit.denials()
        assert denials, "denied rebinding must be audited"
        assert any("bound to identity" in r.reason for r in denials)

    def test_protection_does_not_break_grants(self):
        """Split-driver sharing keeps working while dumps are blocked."""
        platform = build_platform(AccessMode.IMPROVED, seed=62)
        guest = platform.add_guest("worker")
        # The ring page is granted (not protected) — commands still flow:
        assert len(guest.client.get_random(16)) == 16
        # While every instance state frame refuses foreign maps:
        instance = platform.manager.instance(guest.instance_id)
        from repro.util.errors import XenError

        hypercalls = platform.dom0_hypercalls()
        for frame in instance.state_region.frames:
            with pytest.raises(XenError):
                hypercalls.foreign_map_page(frame)

    def test_state_theft_is_silent_but_useless(self):
        from repro.attacks.theft import StateFileTheftAttack

        platform = build_platform(AccessMode.IMPROVED, seed=63)
        guest = platform.add_guest("victim")
        ek = guest.client.read_pubek()
        guest.client.take_ownership(b"O" * 20, b"S" * 20, ek)
        attack = StateFileTheftAttack(platform)
        succeeded, detail = attack.run(guest.instance_id)
        assert not succeeded
        assert "ciphertext" in detail

    def test_cross_vm_attack_from_guest_blocked_at_hypervisor(self):
        """An unprivileged guest cannot even reach the dump interface."""
        platform = build_platform(AccessMode.BASELINE, seed=64)
        attacker = platform.add_guest("attacker")
        victim = platform.add_guest("victim")
        from repro.util.errors import XenError

        hypercalls = platform.hypercalls_for(attacker.domain.domid)
        with pytest.raises(XenError):
            hypercalls.dump_domain_memory(victim.domain.domid)
        with pytest.raises(XenError):
            hypercalls.foreign_map_page(victim.domain.memory.frames[0])

    def test_replayed_migration_offer_blocked_and_audited(self):
        """An interceptor who captured a sealed migration package cannot
        land a second copy of the instance by replaying it: the offer is
        single-use, the replay raises, and the denial is audited."""
        from repro.util.errors import MigrationError

        source = build_platform(AccessMode.IMPROVED, seed=65, name="atk-src")
        destination = build_platform(AccessMode.IMPROVED, seed=66, name="atk-dst")
        guest = source.add_guest("victim")
        target_vm = destination.xen.create_domain(
            guest.domain.name,
            kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        offer = destination.migration.prepare_target()
        captured = source.migration.export_sealed(guest.domain.uuid, offer)
        destination.migration.import_sealed(captured, target_vm)
        instances_before = len(destination.manager.instances())
        clone_vm = destination.xen.create_domain(
            "victim-clone",
            kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        with pytest.raises(MigrationError, match="replay"):
            destination.migration.import_sealed(captured, clone_vm)
        assert len(destination.manager.instances()) == instances_before
        denials = [
            r for r in destination.audit.for_subject("migration")
            if not r.allowed and "replay" in r.reason
        ]
        assert denials, "the replay attempt must be visible in the audit log"

    def test_stale_migration_offer_blocked_and_audited(self):
        """A stale offer dug out of a captured handshake expires on the
        virtual clock and cannot be redeemed later."""
        from repro.sim.timing import get_context
        from repro.util.errors import MigrationError

        source = build_platform(AccessMode.IMPROVED, seed=67, name="stale-src")
        destination = build_platform(AccessMode.IMPROVED, seed=68, name="stale-dst")
        guest = source.add_guest("victim")
        target_vm = destination.xen.create_domain(
            guest.domain.name,
            kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        offer = destination.migration.prepare_target(ttl_us=1_000.0)
        txn = source.migration.begin_export_sealed(guest.domain.uuid, offer)
        get_context().clock.advance(60_000.0)
        with pytest.raises(MigrationError, match="expired"):
            destination.migration.import_sealed(txn.package, target_vm)
        source.migration.abort_export(txn)
        # Fail-closed rollback: the only copy still serves on the source.
        assert source.manager.instance_for_vm(guest.domain.uuid)
