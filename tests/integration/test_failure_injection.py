"""Failure injection: seeded faults, abused transports, exhaustion.

Storage, ring, device and migration faults are delivered through the
public :mod:`repro.faults` API — a seeded :class:`FaultPlan` executed by a
:class:`FaultInjector` installed around the code under test — rather than
by hand-editing disk blobs.  The remaining hand-edit cases model an
*attacker* (or a dying medium) damaging files at rest, which is a
different threat than an injected runtime fault.
"""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, injector_scope, spec
from repro.util.errors import (
    FaultInjected,
    MarshalError,
    RetryExhausted,
    RingError,
    TpmError,
    VtpmError,
)


def _plan(*specs, seed=7, name="test-plan"):
    return FaultPlan(specs=tuple(specs), seed=seed, name=name)


class TestStorageFaults:
    def test_torn_write_retried_transparently(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        guest.client.extend(9, b"\x21" * 20)
        expected = guest.client.pcr_read(9)
        plan = _plan(spec(FaultKind.STORAGE_TORN_WRITE, at=(0,)))
        with injector_scope(FaultInjector(plan)) as injector:
            platform.manager.save_instance(guest.instance_id)
        # The first write died mid-flush; the retry committed the same
        # generation, so restore sees exactly the saved state.
        assert platform.disk.torn_writes == 1
        assert injector.retries >= 1
        assert platform.storage.recoveries >= 1
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        restored = platform.manager.restore_instance(guest.domain)
        guest.backend.rebind(restored.instance_id)
        assert guest.client.pcr_read(9) == expected

    def test_read_corruption_healed_by_reread(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        guest.client.extend(4, b"\x55" * 20)
        expected = guest.client.pcr_read(4)
        platform.manager.save_instance(guest.instance_id)
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        plan = _plan(spec(FaultKind.STORAGE_READ_CORRUPT, at=(0,)))
        with injector_scope(FaultInjector(plan)) as injector:
            restored = platform.manager.restore_instance(guest.domain)
        guest.backend.rebind(restored.instance_id)
        assert injector.fault_counts["storage-read-corrupt"] == 1
        assert injector.retries >= 1
        assert guest.client.pcr_read(4) == expected

    def test_persistent_corruption_falls_back_a_generation(
        self, improved_platform
    ):
        platform = improved_platform
        guest = platform.add_guest("g")
        guest.client.extend(11, b"\x31" * 20)
        checkpoint = guest.client.pcr_read(11)
        platform.manager.save_instance(guest.instance_id)   # generation 1
        guest.client.extend(11, b"\x32" * 20)
        platform.manager.save_instance(guest.instance_id)   # generation 2
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        # Every read of generation 2 comes back corrupt: the medium is bad,
        # not the bus.  Restore must fall back to generation 1 — never hand
        # out a corrupt blob.
        latest = platform.storage.generations(guest.domain.uuid)[-1]
        plan = _plan(
            spec(
                FaultKind.STORAGE_READ_CORRUPT,
                every=1,
                match={"name": f"*gen-{latest:08d}"},
            )
        )
        with injector_scope(FaultInjector(plan)):
            restored = platform.manager.restore_instance(guest.domain)
        guest.backend.rebind(restored.instance_id)
        assert platform.storage.fallbacks >= 1
        assert guest.client.pcr_read(11) == checkpoint

    def test_enospc_garbage_collects_and_retries(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        for _ in range(3):
            platform.manager.save_instance(guest.instance_id)
        plan = _plan(spec(FaultKind.STORAGE_ENOSPC, at=(0,)))
        with injector_scope(FaultInjector(plan)) as injector:
            platform.manager.save_instance(guest.instance_id)
        assert injector.fault_counts["storage-enospc"] == 1
        generations = platform.storage.generations(guest.domain.uuid)
        assert generations[-1] == 4
        # The new generation committed despite the full disk, and restore works.
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        platform.manager.restore_instance(guest.domain)

    def test_save_retry_exhaustion_surfaces(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        plan = _plan(spec(FaultKind.STORAGE_TORN_WRITE, every=1))
        with injector_scope(FaultInjector(plan)):
            with pytest.raises(RetryExhausted):
                platform.manager.save_instance(guest.instance_id)
        # The failed save never destroyed the running instance.
        assert len(guest.client.get_random(4)) == 4


class TestCrashMidSave:
    def test_hard_crash_mid_save_recovers_last_committed(
        self, improved_platform
    ):
        platform = improved_platform
        guest = platform.add_guest("g")
        guest.client.extend(10, b"\x0a" * 20)
        committed = guest.client.pcr_read(10)
        platform.manager.save_instance(guest.instance_id)   # generation 1
        guest.client.extend(10, b"\x0b" * 20)               # never persisted
        # The manager dies mid-flush of generation 2: non-transient torn
        # write, so no retry — the daemon is gone.
        plan = _plan(
            spec(FaultKind.STORAGE_TORN_WRITE, at=(0,), transient=False)
        )
        with injector_scope(FaultInjector(plan)):
            with pytest.raises(FaultInjected):
                platform.manager.save_instance(guest.instance_id)
        # Hard restart: no clean flush; recovery walks past the torn
        # generation 2 to the committed generation 1.
        assert platform.restart_manager(clean=False) == 1
        assert platform.storage.fallbacks >= 1
        assert guest.client.pcr_read(10) == committed

    def test_crash_mid_save_leaves_torn_file_detectable(
        self, improved_platform
    ):
        platform = improved_platform
        guest = platform.add_guest("g")
        platform.manager.save_instance(guest.instance_id)
        plan = _plan(
            spec(FaultKind.STORAGE_TORN_WRITE, at=(0,), transient=False)
        )
        with injector_scope(FaultInjector(plan)):
            with pytest.raises(FaultInjected):
                platform.manager.save_instance(guest.instance_id)
        # Both generation files exist on disk; the torn one is generation 2.
        assert platform.storage.generations(guest.domain.uuid) == [1, 2]
        assert platform.disk.torn_writes == 1


class TestStorageCorruptionAtRest:
    """Medium damage / attacker edits — not runtime faults, so these keep
    hand-editing the (generation-framed) files."""

    def test_improved_never_restores_damaged_only_copy(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        name = platform.manager.save_instance(guest.instance_id)
        blob = bytearray(platform.disk.read(name))
        blob[len(blob) // 2] ^= 0xFF
        platform.disk.write(name, bytes(blob))
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        # The checksum catches the flip; with no older generation to fall
        # back to, restore refuses rather than deserialising garbage.
        with pytest.raises(VtpmError):
            platform.manager.restore_instance(guest.domain)

    def test_corrupt_latest_falls_back_to_committed_predecessor(
        self, baseline_platform
    ):
        platform = baseline_platform
        guest = platform.add_guest("g")
        guest.client.extend(6, b"\x66" * 20)
        checkpoint = guest.client.pcr_read(6)
        platform.manager.save_instance(guest.instance_id)
        guest.client.extend(6, b"\x67" * 20)
        name = platform.manager.save_instance(guest.instance_id)
        platform.disk.write(name, b"garbage " * 10)  # structural damage
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        restored = platform.manager.restore_instance(guest.domain)
        guest.backend.rebind(restored.instance_id)
        assert guest.client.pcr_read(6) == checkpoint

    def test_baseline_detects_structural_corruption(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        name = platform.manager.save_instance(guest.instance_id)
        platform.disk.write(name, b"garbage " * 10)
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        with pytest.raises(VtpmError):
            platform.manager.restore_instance(guest.domain)

    def test_missing_state_file(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        with pytest.raises(VtpmError):
            platform.manager.restore_instance(guest.domain)

    def test_swapped_state_files_rejected_in_improved(self, improved_platform):
        """A (ciphertext) state file copied into another VM's generation
        slot fails: the per-instance key derivation binds uuid + identity."""
        platform = improved_platform
        a = platform.add_guest("alpha")
        b = platform.add_guest("beta")
        name_a = platform.manager.save_instance(a.instance_id)
        name_b = platform.manager.save_instance(b.instance_id)
        platform.disk.write(name_b, platform.disk.read(name_a))
        platform.manager.destroy_instance(b.instance_id, persist=False)
        from repro.util.errors import SealingError

        with pytest.raises(SealingError):
            platform.manager.restore_instance(b.domain)


class TestRingFaults:
    def test_dropped_notifications_retried(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        plan = _plan(spec(FaultKind.RING_DROP_NOTIFY, at=(0, 1)))
        with injector_scope(FaultInjector(plan)) as injector:
            data = guest.client.get_random(8)
        assert len(data) == 8
        assert injector.fault_counts["ring-drop-notify"] == 2
        assert injector.retries >= 2
        assert injector.recoveries >= 1

    def test_ring_stall_costs_virtual_time(self, baseline_platform):
        from repro.sim.timing import get_context

        platform = baseline_platform
        guest = platform.add_guest("g")
        before = get_context().clock.now_us
        plan = _plan(spec(FaultKind.RING_STALL, at=(0,)))
        with injector_scope(FaultInjector(plan)):
            assert len(guest.client.get_random(8)) == 8
        assert get_context().clock.now_us - before >= 4_000.0

    def test_every_kick_dropped_exhausts_retry_budget(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        plan = _plan(spec(FaultKind.RING_DROP_NOTIFY, every=1))
        with injector_scope(FaultInjector(plan)):
            with pytest.raises(RetryExhausted):
                guest.client.get_random(8)
        # Chaos off: the ring still works — no stuck state left behind.
        assert len(guest.client.get_random(8)) == 8


class TestDeviceFaults:
    def test_transient_device_fault_retried_invisibly(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        plan = _plan(
            spec(FaultKind.DEVICE_TRANSIENT, at=(0,), match={"device": "vtpm*"})
        )
        with injector_scope(FaultInjector(plan)) as injector:
            data = guest.client.get_random(8)
        assert len(data) == 8
        assert injector.fault_counts["device-transient"] == 1
        assert injector.retries >= 1
        assert injector.recoveries >= 1

    def test_unrecoverable_device_fault_degrades_to_tpm_fail(
        self, improved_platform
    ):
        from repro.tpm.constants import TPM_FAIL

        platform = improved_platform
        guest = platform.add_guest("g")
        plan = _plan(
            spec(FaultKind.DEVICE_TRANSIENT, every=1, match={"device": "vtpm*"})
        )
        with injector_scope(FaultInjector(plan)):
            with pytest.raises(TpmError) as err:
                guest.client.get_random(8)
        assert err.value.code == TPM_FAIL
        assert platform.manager.faults_surfaced >= 1
        # Degradation is audited, and the manager is still alive.
        assert any(
            record.operation == "FAULT-DEGRADED"
            for record in platform.audit.records()
        )
        assert len(guest.client.get_random(8)) == 8
        assert platform.audit.verify_chain()


class TestMigrationInterruption:
    @pytest.fixture
    def pair_improved(self):
        from repro.core.config import AccessMode
        from repro.harness.builder import build_platform

        return (
            build_platform(AccessMode.IMPROVED, seed=81, name="src-f"),
            build_platform(AccessMode.IMPROVED, seed=82, name="dst-f"),
        )

    @staticmethod
    def _target_vm(destination, guest):
        return destination.xen.create_domain(
            guest.domain.name,
            kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )

    def _migrated_client(self, destination, target_vm, instance):
        from repro.tpm.client import TpmClient

        return TpmClient(
            lambda wire: destination.manager.handle_command(
                target_vm.domid, instance.instance_id, wire
            ),
            destination.rng.fork("mig-check"),
        )

    def test_net_drop_rolls_back_and_retries(self, pair_improved):
        from repro.vtpm.migration import migrate_with_recovery

        source, destination = pair_improved
        guest = source.add_guest("mover")
        guest.client.extend(6, b"\x77" * 20)
        expected = guest.client.pcr_read(6)
        target_vm = self._target_vm(destination, guest)
        plan = _plan(spec(FaultKind.MIGRATION_NET_DROP, at=(0,)))
        with injector_scope(FaultInjector(plan)) as injector:
            instance = migrate_with_recovery(
                source.migration, destination.migration,
                guest.domain.uuid, target_vm,
            )
        assert injector.retries >= 1
        assert injector.recoveries >= 1
        assert source.migration.pending_exports == 0
        # Committed: the source copy is gone, the destination copy is live.
        with pytest.raises(VtpmError):
            source.manager.instance_for_vm(guest.domain.uuid)
        client = self._migrated_client(destination, target_vm, instance)
        assert client.pcr_read(6) == expected

    def test_destination_crash_renegotiates(self, pair_improved):
        from repro.vtpm.migration import migrate_with_recovery

        source, destination = pair_improved
        guest = source.add_guest("mover")
        guest.client.extend(3, b"\x33" * 20)
        expected = guest.client.pcr_read(3)
        target_vm = self._target_vm(destination, guest)
        plan = _plan(spec(FaultKind.MIGRATION_DEST_CRASH, at=(0,)))
        with injector_scope(FaultInjector(plan)) as injector:
            instance = migrate_with_recovery(
                source.migration, destination.migration,
                guest.domain.uuid, target_vm,
            )
        assert injector.fault_counts["migration-dest-crash"] == 1
        client = self._migrated_client(destination, target_vm, instance)
        assert client.pcr_read(3) == expected

    def test_exhausted_migration_leaves_source_serving(self, pair_improved):
        from repro.vtpm.migration import migrate_with_recovery

        source, destination = pair_improved
        guest = source.add_guest("mover")
        target_vm = self._target_vm(destination, guest)
        plan = _plan(spec(FaultKind.MIGRATION_NET_DROP, every=1))
        with injector_scope(FaultInjector(plan)):
            with pytest.raises(RetryExhausted):
                migrate_with_recovery(
                    source.migration, destination.migration,
                    guest.domain.uuid, target_vm,
                )
        # Rolled back, not destroyed: the guest's vTPM keeps serving.
        assert source.migration.pending_exports == 0
        assert source.manager.instance_for_vm(guest.domain.uuid) is not None
        assert len(guest.client.get_random(4)) == 4


class TestTransportAbuse:
    def test_garbage_injected_into_ring_surfaces_as_tpm_error(
        self, baseline_platform
    ):
        """Dom0 maps the ring page and injects garbage: the manager answers
        with a TPM error frame; the instance keeps working."""
        platform = baseline_platform
        guest = platform.add_guest("g")
        ring = guest.frontend.ring
        import struct

        garbage = b"\xde\xad\xbe\xef" * 4
        # Dom0 writes through its grant mapping; the kick must arrive at
        # the back-end as if from the front-end (the injection vector).
        platform.xen.memory.write(
            0, ring.frame, 0, struct.pack(">II", 1, len(garbage)) + garbage
        )
        platform.xen.events.notify(ring.port, guest.domain.domid)
        # The response the backend wrote is an error frame:
        status, length = struct.unpack(
            ">II", platform.xen.memory.read(0, ring.frame, 0, 8)
        )
        assert status == 2
        from repro.tpm import marshal

        body = platform.xen.memory.read(0, ring.frame, 8, length)
        assert marshal.parse_response(body).return_code != 0
        # And legitimate traffic still flows afterwards.
        assert len(guest.client.get_random(4)) == 4

    def test_oversized_frontend_command_rejected_locally(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        with pytest.raises(RingError):
            guest.frontend.transport(b"\x00" * 5000)

    def test_notify_with_bad_status_raises_ring_error(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        ring = guest.frontend.ring
        import struct

        platform.xen.memory.write(0, ring.frame, 0, struct.pack(">II", 7, 0))
        with pytest.raises(RingError, match="status 7"):
            platform.xen.events.notify(ring.port, guest.domain.domid)


class TestResourceExhaustion:
    def test_session_exhaustion_surfaces_tpm_resources(self, tpm_client):
        from repro.tpm.constants import MAX_SESSIONS, TPM_RESOURCES

        sessions = [tpm_client.oiap() for _ in range(MAX_SESSIONS)]
        with pytest.raises(TpmError) as err:
            tpm_client.oiap()
        assert err.value.code == TPM_RESOURCES
        # Flushing one frees a slot.
        tpm_client.flush_session(sessions[0])
        tpm_client.oiap()

    def test_key_slot_exhaustion(self, owned_client):
        from tests.conftest import SRK
        from repro.tpm.constants import MAX_KEY_SLOTS, TPM_KEY_SIGNING, TPM_KH_SRK, TPM_RESOURCES

        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, b"K" * 20, TPM_KEY_SIGNING, 512
        )
        handles = [
            owned_client.load_key2(TPM_KH_SRK, SRK, blob)
            for _ in range(MAX_KEY_SLOTS)
        ]
        with pytest.raises(TpmError) as err:
            owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        assert err.value.code == TPM_RESOURCES
        owned_client.evict_key(handles[0])
        owned_client.load_key2(TPM_KH_SRK, SRK, blob)

    def test_machine_memory_exhaustion(self):
        from repro.crypto.random_source import RandomSource
        from repro.util.errors import XenError
        from repro.xen.hypervisor import Xen

        xen = Xen(RandomSource(b"small"), total_pages=300, dom0_pages=256)
        xen.create_domain("one", b"k", pages=30)
        with pytest.raises(XenError, match="out of memory"):
            xen.create_domain("two", b"k", pages=30)


class TestAuditResilience:
    def test_audit_survives_denials_and_verifies(self, improved_platform):
        platform = improved_platform
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        # The backend refuses the re-bind outright (fail closed), and each
        # refused attempt lands on the audit chain as a denial.
        for _ in range(5):
            with pytest.raises(VtpmError):
                attacker.backend.rebind(victim.instance_id)
        assert attacker.backend.instance_id == attacker.instance_id
        assert len(platform.audit.denials()) == 5
        assert platform.audit.verify_chain()

    def test_denied_commands_do_not_touch_instance(self, improved_platform):
        platform = improved_platform
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        instance = platform.manager.instance(victim.instance_id)
        handled_before = instance.commands_handled
        # Fail closed: the re-bind never takes, so the attacker's commands
        # keep landing on its own instance and the victim is untouched.
        with pytest.raises(VtpmError):
            attacker.backend.rebind(victim.instance_id)
        attacker.client.extend(10, b"\xee" * 20)
        assert instance.commands_handled == handled_before
        assert victim.client.pcr_read(10) == b"\x00" * 20

    def test_injected_faults_land_on_the_audit_chain(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        plan = _plan(spec(FaultKind.RING_DROP_NOTIFY, at=(0,)))
        injector = FaultInjector(
            plan, audit=platform.audit, metrics=None
        )
        with injector_scope(injector):
            guest.client.get_random(4)
        fault_records = [
            r for r in platform.audit.records()
            if r.operation.startswith("FAULT:")
        ]
        assert len(fault_records) == 1
        assert fault_records[0].operation == "FAULT:ring-drop-notify"
        assert platform.audit.verify_chain()
