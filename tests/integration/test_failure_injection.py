"""Failure injection: corrupted storage, abused transports, exhaustion."""

import hashlib

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform
from repro.util.errors import (
    MarshalError,
    RingError,
    SealingError,
    TpmError,
    VtpmError,
)


class TestStorageCorruption:
    def test_improved_detects_any_corruption(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        platform.manager.save_instance(guest.instance_id)
        name = f"vtpm-state-{guest.domain.uuid}"
        blob = bytearray(platform.disk.read(name))
        blob[len(blob) // 2] ^= 0xFF
        platform.disk.write(name, bytes(blob))
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        with pytest.raises(SealingError):
            platform.manager.restore_instance(guest.domain)

    def test_baseline_detects_structural_corruption(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        platform.manager.save_instance(guest.instance_id)
        name = f"vtpm-state-{guest.domain.uuid}"
        platform.disk.write(name, b"garbage " * 10)
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        with pytest.raises(MarshalError):
            platform.manager.restore_instance(guest.domain)

    def test_missing_state_file(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        with pytest.raises(VtpmError):
            platform.manager.restore_instance(guest.domain)

    def test_swapped_state_files_rejected_in_improved(self, improved_platform):
        """A (ciphertext) state file renamed to another VM's slot fails:
        the per-instance key derivation binds uuid + identity."""
        platform = improved_platform
        a = platform.add_guest("alpha")
        b = platform.add_guest("beta")
        platform.manager.save_all()
        file_a = platform.disk.read(f"vtpm-state-{a.domain.uuid}")
        platform.disk.write(f"vtpm-state-{b.domain.uuid}", file_a)
        platform.manager.destroy_instance(b.instance_id, persist=False)
        with pytest.raises(SealingError):
            platform.manager.restore_instance(b.domain)


class TestTransportAbuse:
    def test_garbage_injected_into_ring_surfaces_as_tpm_error(
        self, baseline_platform
    ):
        """Dom0 maps the ring page and injects garbage: the manager answers
        with a TPM error frame; the instance keeps working."""
        platform = baseline_platform
        guest = platform.add_guest("g")
        ring = guest.frontend.ring
        import struct

        garbage = b"\xde\xad\xbe\xef" * 4
        # Dom0 writes through its grant mapping; the kick must arrive at
        # the back-end as if from the front-end (the injection vector).
        platform.xen.memory.write(
            0, ring.frame, 0, struct.pack(">II", 1, len(garbage)) + garbage
        )
        platform.xen.events.notify(ring.port, guest.domain.domid)
        # The response the backend wrote is an error frame:
        status, length = struct.unpack(
            ">II", platform.xen.memory.read(0, ring.frame, 0, 8)
        )
        assert status == 2
        from repro.tpm import marshal

        body = platform.xen.memory.read(0, ring.frame, 8, length)
        assert marshal.parse_response(body).return_code != 0
        # And legitimate traffic still flows afterwards.
        assert len(guest.client.get_random(4)) == 4

    def test_oversized_frontend_command_rejected_locally(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        with pytest.raises(RingError):
            guest.frontend.transport(b"\x00" * 5000)

    def test_notify_with_bad_status_raises_ring_error(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        ring = guest.frontend.ring
        import struct

        platform.xen.memory.write(0, ring.frame, 0, struct.pack(">II", 7, 0))
        with pytest.raises(RingError, match="status 7"):
            platform.xen.events.notify(ring.port, guest.domain.domid)


class TestResourceExhaustion:
    def test_session_exhaustion_surfaces_tpm_resources(self, tpm_client):
        from repro.tpm.constants import MAX_SESSIONS, TPM_RESOURCES

        sessions = [tpm_client.oiap() for _ in range(MAX_SESSIONS)]
        with pytest.raises(TpmError) as err:
            tpm_client.oiap()
        assert err.value.code == TPM_RESOURCES
        # Flushing one frees a slot.
        tpm_client.flush_session(sessions[0])
        tpm_client.oiap()

    def test_key_slot_exhaustion(self, owned_client):
        from tests.conftest import SRK
        from repro.tpm.constants import MAX_KEY_SLOTS, TPM_KEY_SIGNING, TPM_KH_SRK, TPM_RESOURCES

        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, b"K" * 20, TPM_KEY_SIGNING, 512
        )
        handles = [
            owned_client.load_key2(TPM_KH_SRK, SRK, blob)
            for _ in range(MAX_KEY_SLOTS)
        ]
        with pytest.raises(TpmError) as err:
            owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        assert err.value.code == TPM_RESOURCES
        owned_client.evict_key(handles[0])
        owned_client.load_key2(TPM_KH_SRK, SRK, blob)

    def test_machine_memory_exhaustion(self):
        from repro.crypto.random_source import RandomSource
        from repro.util.errors import XenError
        from repro.xen.hypervisor import Xen

        xen = Xen(RandomSource(b"small"), total_pages=300, dom0_pages=256)
        xen.create_domain("one", b"k", pages=30)
        with pytest.raises(XenError, match="out of memory"):
            xen.create_domain("two", b"k", pages=30)


class TestAuditResilience:
    def test_audit_survives_denials_and_verifies(self, improved_platform):
        platform = improved_platform
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        attacker.backend.rebind(victim.instance_id)
        for _ in range(5):
            with pytest.raises(TpmError):
                attacker.client.pcr_read(0)
        attacker.backend.rebind(attacker.instance_id)
        assert len(platform.audit.denials()) == 5
        assert platform.audit.verify_chain()

    def test_denied_commands_do_not_touch_instance(self, improved_platform):
        platform = improved_platform
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        instance = platform.manager.instance(victim.instance_id)
        handled_before = instance.commands_handled
        attacker.backend.rebind(victim.instance_id)
        with pytest.raises(TpmError):
            attacker.client.extend(10, b"\xee" * 20)
        attacker.backend.rebind(attacker.instance_id)
        assert instance.commands_handled == handled_before
        assert victim.client.pcr_read(10) == b"\x00" * 20
