"""Integration: the experiment runners produce sane, stable results.

These are the same functions the benchmark harness drives, run at small
sizes so the full test suite stays fast.
"""

import pytest

from repro.harness.experiments import (
    run_ablation,
    run_attack_matrix_experiment,
    run_command_latency,
    run_instance_creation,
    run_migration_sweep,
    run_policy_scaling,
    run_throughput_scaling,
    run_webapp_benchmark,
)
from repro.workloads.mixes import OPERATIONS


class TestCommandLatency:
    @pytest.fixture(scope="class")
    def result(self):
        return run_command_latency(reps=8)

    def test_covers_every_operation(self, result):
        assert set(result.baseline) == set(OPERATIONS)
        assert set(result.improved) == set(OPERATIONS)

    def test_overhead_bounded(self, result):
        for op, baseline_ms, improved_ms, overhead in result.overhead_rows():
            assert overhead >= 0.0, op
            assert overhead < 25.0, (op, overhead)

    def test_crypto_ops_slowest(self, result):
        rows = {r[0]: r for r in result.overhead_rows()}
        assert rows["create_wrap_key"][1] > rows["extend"][1] * 100
        assert rows["sign"][1] > rows["pcr_read"][1]

    def test_render_mentions_all_ops(self, result):
        text = result.render()
        for op in OPERATIONS:
            assert op in text

    def test_deterministic(self, result):
        again = run_command_latency(reps=8)
        assert again.overhead_rows() == result.overhead_rows()


class TestThroughputScaling:
    def test_loss_small_at_every_point(self):
        result = run_throughput_scaling(vm_counts=(1, 2, 4), ops_per_vm=12)
        for _vms, baseline, improved, loss in result.rows():
            assert improved <= baseline
            assert loss < 10.0


class TestAttackMatrixExperiment:
    def test_shape(self):
        result = run_attack_matrix_experiment(seed=42)
        assert result.improvement_blocks_all()
        assert len(result.rows) == 7


class TestInstanceCreation:
    def test_flat_scaling(self):
        result = run_instance_creation(populations=(0, 2, 4))
        rows = result.rows()
        assert len(rows) == 3
        values = [row[1] for row in rows]
        assert max(values) / min(values) < 1.15


class TestMigrationSweep:
    def test_constant_security_adder(self):
        result = run_migration_sweep(nv_payload_kib=(0, 16))
        rows = result.rows()
        adders = [improved - baseline for _s, baseline, improved in rows]
        assert all(a > 0 for a in adders)
        assert abs(adders[0] - adders[1]) / max(adders) < 0.10


class TestPolicyScaling:
    def test_flat(self):
        result = run_policy_scaling(rule_counts=(10, 1000), lookups=400)
        assert result.is_flat(tolerance=0.10)


class TestWebAppBenchmark:
    def test_ordering(self):
        result = run_webapp_benchmark(requests=400)
        rows = {r[0]: r for r in result.rows}
        assert rows["no-vtpm"][1] >= rows["baseline"][1] >= rows["improved"][1]


class TestAblation:
    def test_components_nonnegative_and_additive(self):
        result = run_ablation(ops=60)
        rows = {label: delta for label, _mean, delta in result.rows}
        assert rows["all-off"] == 0.0
        assert rows["full"] > 0.0
        singles = [rows[k] for k in rows if k.startswith("only ")]
        assert all(s >= 0.0 for s in singles)
        assert result.breakdown  # the ledger saw ac.* charges
