"""Integration: workloads driven over live platforms."""

import hashlib

import pytest

from repro.core.config import AccessMode
from repro.crypto.random_source import RandomSource
from repro.harness.builder import build_platform
from repro.workloads.attestation import AttestationWorkload
from repro.workloads.mixes import MIX_MIXED, GuestSession
from repro.workloads.webapp import SealedStorageWebApp


class TestAttestationWorkload:
    def test_rounds_verify_on_healthy_guest(self, improved_platform):
        guest = improved_platform.add_guest("healthy")
        session = GuestSession(guest, improved_platform.rng.fork("s"))
        workload = AttestationWorkload(
            session, improved_platform.rng.fork("chal")
        )
        result = workload.run(rounds=5)
        assert result.all_verified

    def test_corrupted_pcr_fails_expected_values(self, improved_platform):
        guest = improved_platform.add_guest("tampered")
        session = GuestSession(guest, improved_platform.rng.fork("s"))
        workload = AttestationWorkload(
            session, improved_platform.rng.fork("chal"), pcr_indices=(12,)
        )
        reference = [guest.client.pcr_read(12)]
        assert workload.challenge_once(expected_values=reference)
        guest.client.extend(12, hashlib.sha1(b"implant").digest())
        assert not workload.challenge_once(expected_values=reference)
        # Without a reference the quote still *verifies* (signature is
        # valid); it is the comparison that flags the change.
        assert workload.challenge_once()

    def test_forged_signature_rejected(self, improved_platform):
        guest = improved_platform.add_guest("forged")
        session = GuestSession(guest, improved_platform.rng.fork("s"))
        workload = AttestationWorkload(session, improved_platform.rng.fork("c"))
        # Swap in an unrelated public key: every round must fail.
        from repro.crypto.rsa import generate_keypair

        workload.public = generate_keypair(
            512, RandomSource(b"unrelated")
        ).public
        result = workload.run(rounds=3)
        assert result.failed == 3


class TestWebAppWorkload:
    def test_deployments_ordering(self):
        """no-vtpm >= baseline >= improved in requests/s, same misses."""
        results = {}
        for deployment, mode in (
            ("no-vtpm", None),
            ("baseline", AccessMode.BASELINE),
            ("improved", AccessMode.IMPROVED),
        ):
            from repro.harness.builder import fresh_timing_context

            fresh_timing_context()
            session = None
            if mode is not None:
                platform = build_platform(mode, seed=70)
                guest = platform.add_guest("web")
                session = GuestSession(guest, platform.rng.fork("s"))
            app = SealedStorageWebApp(
                RandomSource(70), session, deployment, cache_hit_ratio=0.85
            )
            results[deployment] = app.serve(400)
        assert (
            results["no-vtpm"].requests_per_sec
            >= results["baseline"].requests_per_sec
            >= results["improved"].requests_per_sec
        )
        assert (
            results["no-vtpm"].misses
            == results["baseline"].misses
            == results["improved"].misses
        )

    def test_cache_ratio_extremes(self, baseline_platform):
        guest = baseline_platform.add_guest("web")
        session = GuestSession(guest, baseline_platform.rng.fork("s"))
        always_hit = SealedStorageWebApp(
            RandomSource(1), session, "baseline", cache_hit_ratio=1.0
        ).serve(100)
        assert always_hit.misses == 0
        always_miss = SealedStorageWebApp(
            RandomSource(1), session, "baseline", cache_hit_ratio=0.0
        ).serve(100)
        assert always_miss.misses == 100
        assert always_miss.requests_per_sec < always_hit.requests_per_sec

    def test_invalid_configs_rejected(self):
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            SealedStorageWebApp(RandomSource(1), None, "baseline")
        with pytest.raises(ReproError):
            SealedStorageWebApp(RandomSource(1), None, "weird")


class TestMixedWorkloadStability:
    def test_long_mixed_run_both_regimes(self):
        """A few hundred mixed commands run clean in both regimes."""
        for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
            platform = build_platform(mode, seed=71)
            guest = platform.add_guest("grinder")
            session = GuestSession(guest, platform.rng.fork("s"))
            plan = MIX_MIXED.sequence(RandomSource(b"grind"), 200)
            for op in plan:
                session.run_operation(op)
            assert platform.manager.commands_denied == 0
