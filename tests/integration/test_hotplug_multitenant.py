"""Integration: watch-driven hotplug and the multi-tenant capstone scenario."""

import hashlib

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform
from repro.util.errors import VtpmError


class TestHotplug:
    def test_frontend_publication_triggers_connect(self, improved_platform):
        guest = improved_platform.add_guest_hotplug("hp")
        assert improved_platform.hotplug_agent().connects == 1
        assert len(guest.client.get_random(8)) == 8

    def test_state_six_disconnects_and_persists(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest_hotplug("hp")
        guest.client.extend(5, b"\x05" * 20)
        guest.frontend.close()
        agent = platform.hotplug_agent()
        assert agent.disconnects == 1
        assert platform.manager.instance_count == 0
        # State was persisted on the way out.
        assert platform.storage.has_state(guest.domain.uuid)

    def test_many_hotplug_guests(self, baseline_platform):
        guests = [
            baseline_platform.add_guest_hotplug(f"hp{i}") for i in range(4)
        ]
        agent = baseline_platform.hotplug_agent()
        assert agent.connects == 4
        for i, guest in enumerate(guests):
            guest.client.extend(6, hashlib.sha1(bytes([i])).digest())
        values = {g.client.pcr_read(6) for g in guests}
        assert len(values) == 4  # isolated instances

    def test_hotplug_and_explicit_paths_coexist(self, baseline_platform):
        explicit = baseline_platform.add_guest("explicit")
        hotplugged = baseline_platform.add_guest_hotplug("hotplugged")
        assert explicit.instance_id != hotplugged.instance_id
        assert len(explicit.client.get_random(4)) == 4
        assert len(hotplugged.client.get_random(4)) == 4

    def test_monitor_covers_hotplugged_guests(self, improved_platform):
        victim = improved_platform.add_guest_hotplug("victim")
        attacker = improved_platform.add_guest_hotplug("attacker")
        # Hotplugged guests get measured identities too, so the fail-closed
        # backend refuses the re-bind before a single command can flow.
        with pytest.raises(VtpmError):
            attacker.backend.rebind(victim.instance_id)
        # And a forged packet claiming the victim's instance id is still
        # denied per-command by the monitor (defence in depth).
        from repro.tpm.constants import TPM_AUTHFAIL, TPM_ORD_PcrRead
        from repro.tpm.marshal import build_command

        wire = build_command(TPM_ORD_PcrRead, (0).to_bytes(4, "big"))
        resp = improved_platform.manager.handle_command(
            attacker.domain.domid, victim.instance_id, wire
        )
        assert int.from_bytes(resp[6:10], "big") == TPM_AUTHFAIL


class TestMultiTenantCapstone:
    """The paper's motivating scenario end to end: a consolidated host,
    several tenants doing real trusted-computing work, one hostile
    privileged administrator — and the improvement holding the line."""

    def test_consolidated_host_under_hostile_admin(self):
        platform = build_platform(AccessMode.IMPROVED, seed=2010,
                                  name="cloud-host")
        tenants = {}
        for name in ("bank", "shop", "mail"):
            handle = platform.add_guest(name)
            client = handle.client
            ek = client.read_pubek()
            owner = hashlib.sha1(f"owner-{name}".encode()).digest()
            srk = hashlib.sha1(f"srk-{name}".encode()).digest()
            client.take_ownership(owner, srk, ek)
            client.extend(10, hashlib.sha1(f"app-{name}".encode()).digest())
            from repro.tpm.constants import TPM_KH_SRK

            sealed = client.seal(
                TPM_KH_SRK, srk, f"{name}-master-key".encode(),
                hashlib.sha1(f"data-{name}".encode()).digest(),
            )
            tenants[name] = (handle, owner, srk, sealed)

        # The hostile admin dumps everything dumpable.
        from repro.attacks.memdump import secrets_found

        hypercalls = platform.dom0_hypercalls()
        dump = b"".join(
            hypercalls.dump_domain_memory(
                platform.manager.manager_domid
            ).values()
        )
        for name, (handle, _o, _s, _blob) in tenants.items():
            instance = platform.manager.instance(handle.instance_id)
            assert not secrets_found(
                dump, instance.device.state.secret_material()
            ), f"tenant {name} leaked via memory dump"

        # ...and steals the disk.
        platform.manager.save_all()
        loot = b"".join(platform.disk.raw_contents().values())
        for name, (handle, _o, _s, _blob) in tenants.items():
            instance = platform.manager.instance(handle.instance_id)
            assert not secrets_found(
                loot, instance.device.state.secret_material()
            ), f"tenant {name} leaked via disk theft"

        # ...and tries to rebind one tenant's channel at another's vTPM:
        # the fail-closed backend refuses outright, and the channel stays
        # bound to its own instance.
        bank = tenants["bank"][0]
        shop = tenants["shop"][0]
        with pytest.raises(VtpmError):
            shop.backend.rebind(bank.instance_id)
        assert shop.backend.instance_id == shop.instance_id

        # Meanwhile every tenant's legitimate work is unaffected.
        for name, (handle, _owner, srk, sealed) in tenants.items():
            from repro.tpm.constants import TPM_KH_SRK

            recovered = handle.client.unseal(
                TPM_KH_SRK, srk, sealed,
                hashlib.sha1(f"data-{name}".encode()).digest(),
            )
            assert recovered == f"{name}-master-key".encode()

        # The audit log recorded the denial, with an intact chain.
        assert platform.audit.denials()
        assert platform.audit.verify_chain()
