"""Integration tests for the fleet: the cross-host differential oracle.

The central claim of attested migration is that moving a vTPM between
hosts is *invisible* to the guest: a migrated instance must produce the
same response bytes, reach the same PCR/NV state, and accumulate the
same audit decision chain as an identical instance that never moved.
These tests run the two histories side by side and compare byte for
byte.
"""

import hashlib
import struct

import pytest

from repro.cluster import build_fleet, run_cluster_demo
from repro.crypto.random_source import RandomSource
from repro.harness.builder import fresh_timing_context
from repro.harness.chaos import _state_digest
from repro.tpm import marshal
from repro.tpm.constants import NUM_PCRS, TPM_ORD_Extend, TPM_ORD_PcrRead

COMMANDS = 40
MIGRATE_AT = 20
SEED = 501


def _script(seed: int, count: int):
    """The shared command stream: deterministic, placement-independent."""
    rng = RandomSource(f"dual-history-{seed}".encode())
    wires = []
    for _ in range(count):
        if rng.randint_below(100) < 60:
            wires.append(marshal.build_command(
                TPM_ORD_Extend,
                struct.pack(">I", rng.randint_below(NUM_PCRS)) + rng.bytes(20),
            ))
        else:
            wires.append(marshal.build_command(
                TPM_ORD_PcrRead,
                struct.pack(">I", rng.randint_below(NUM_PCRS)),
            ))
    return wires


def _audit_decisions(platform, subject_hex: str):
    """The time- and instance-free audit decision view for one subject."""
    return [
        (record.operation, record.allowed)
        for record in platform.audit.for_subject(subject_hex)
    ]


def _decision_chain(decisions) -> str:
    digest = hashlib.sha256()
    for operation, allowed in decisions:
        digest.update(f"{operation}|{int(allowed)}\n".encode())
    return digest.hexdigest()


class TestCrossHostDifferentialOracle:
    def _run_migrated(self, wires):
        fresh_timing_context()
        fleet = build_fleet(num_hosts=2, seed=SEED, capacity=8, name="mig")
        source = fleet.add_guest("subject")
        target = "h1" if source == "h0" else "h0"
        domid = fleet.router.locate("subject").domid
        identity = fleet.hosts[source].platform.identities.lookup(domid)
        responses = []
        for step, wire in enumerate(wires):
            if step == MIGRATE_AT:
                fleet.migrate("subject", target)
            responses.append(fleet.router.send("subject", wire))
        decisions = (
            _audit_decisions(fleet.hosts[source].platform, identity.hex)
            + _audit_decisions(fleet.hosts[target].platform, identity.hex)
        )
        return responses, _state_digest(fleet.instance_for("subject")), \
            decisions, identity.hex

    def _run_sedentary(self, wires):
        fresh_timing_context()
        fleet = build_fleet(num_hosts=1, seed=SEED, capacity=8, name="sed")
        fleet.add_guest("subject")
        domid = fleet.router.locate("subject").domid
        identity = fleet.hosts["h0"].platform.identities.lookup(domid)
        responses = [fleet.router.send("subject", wire) for wire in wires]
        decisions = _audit_decisions(fleet.hosts["h0"].platform, identity.hex)
        return responses, _state_digest(fleet.instance_for("subject")), \
            decisions, identity.hex

    def test_migrated_history_is_byte_identical_to_sedentary(self):
        wires = _script(SEED, COMMANDS)
        migrated = self._run_migrated(wires)
        sedentary = self._run_sedentary(wires)
        # the measured identity (the access-control subject) survives the move
        assert migrated[3] == sedentary[3]
        # every response frame, in order, byte for byte
        assert migrated[0] == sedentary[0]
        # final PCR banks and NV areas
        assert migrated[1] == sedentary[1]
        # the audit decision chain: the same command decisions, in order,
        # stitched across the two hosts' logs
        assert migrated[2] == sedentary[2]
        assert _decision_chain(migrated[2]) == _decision_chain(sedentary[2])
        # and it actually audited something
        assert len(migrated[2]) >= COMMANDS

    def test_response_digest_is_placement_invariant(self):
        """Same script, three different fleet shapes, one digest."""
        wires = _script(SEED + 1, 24)
        digests = set()
        for hosts in (1, 2, 3):
            fresh_timing_context()
            fleet = build_fleet(
                num_hosts=hosts, seed=SEED + hosts, capacity=8,
                name=f"shape{hosts}",
            )
            fleet.add_guest("subject")
            digest = hashlib.sha256()
            for wire in wires:
                digest.update(fleet.router.send("subject", wire))
            digests.add(digest.hexdigest())
        assert len(digests) == 1


class TestClusterDemoOracles:
    def test_demo_holds_all_oracles_at_small_scale(self):
        result = run_cluster_demo(seed=9, hosts=3, guests=9, steps=24)
        assert result["zero_dropped"]
        assert result["state_preserved"]
        assert result["deterministic"]
        chaotic = result["chaotic"]
        assert chaotic.host_crashes == 1
        assert chaotic.migrations_moved >= 1
        assert chaotic.fault_counts.get("partition", 0) > 0
        assert chaotic.answered == chaotic.submitted
