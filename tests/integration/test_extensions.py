"""Integration: extension features — deep attestation, stub-domain
manager, crash recovery."""

import hashlib

import pytest

from repro.core.certification import (
    EndorsementCertificate,
    verify_endorsement,
)
from repro.core.config import AccessMode
from repro.harness.builder import build_platform
from repro.util.errors import AccessControlError, AccessDenied, SealingError
from repro.workloads.mixes import KEY_AUTH, GuestSession


class TestDeepAttestation:
    @pytest.fixture
    def setup(self, improved_platform):
        guest = improved_platform.add_guest("deep")
        session = GuestSession(guest, improved_platform.rng.fork("s"))
        public = guest.client.get_pub_key(session.sign_key, KEY_AUTH)
        return improved_platform, guest, session, public

    def test_full_chain_verifies(self, setup):
        platform, guest, _session, public = setup
        cert = platform.certifier.endorse(
            platform.manager, guest.domain.domid, guest.instance_id, public
        )
        identity = platform.identities.lookup(guest.domain.domid)
        assert verify_endorsement(
            cert,
            platform.certifier.aik_public,
            expected_identity_hex=identity.hex,
            expected_platform_composite=platform.certifier.platform_composite(),
        )

    def test_certificate_serialization_roundtrip(self, setup):
        platform, guest, _session, public = setup
        cert = platform.certifier.endorse(
            platform.manager, guest.domain.domid, guest.instance_id, public
        )
        restored = EndorsementCertificate.deserialize(cert.serialize())
        assert restored == cert
        assert verify_endorsement(restored, platform.certifier.aik_public)

    def test_rogue_cannot_get_victim_endorsed(self, setup):
        platform, guest, _session, public = setup
        attacker = platform.add_guest("rogue")
        with pytest.raises(AccessDenied):
            platform.certifier.endorse(
                platform.manager, attacker.domain.domid, guest.instance_id, public
            )

    def test_forged_signature_rejected(self, setup):
        platform, guest, _session, public = setup
        cert = platform.certifier.endorse(
            platform.manager, guest.domain.domid, guest.instance_id, public
        )
        forged = EndorsementCertificate(
            vtpm_key_modulus=cert.vtpm_key_modulus,
            identity_hex=cert.identity_hex,
            platform_composite=cert.platform_composite,
            signature=bytes(64),
        )
        assert not verify_endorsement(forged, platform.certifier.aik_public)

    def test_platform_drift_detected_by_challenger(self, setup):
        platform, guest, _session, public = setup
        reference = platform.certifier.platform_composite()
        cert = platform.certifier.endorse(
            platform.manager, guest.domain.domid, guest.instance_id, public
        )
        # Platform firmware changes: new certs carry a different composite.
        platform.hw_client.extend(1, hashlib.sha1(b"new-firmware").digest())
        cert2 = platform.certifier.endorse(
            platform.manager, guest.domain.domid, guest.instance_id, public
        )
        assert verify_endorsement(
            cert, platform.certifier.aik_public,
            expected_platform_composite=reference,
        )
        assert not verify_endorsement(
            cert2, platform.certifier.aik_public,
            expected_platform_composite=reference,
        )

    def test_baseline_instance_cannot_be_endorsed(self, baseline_platform,
                                                  improved_platform):
        guest = baseline_platform.add_guest("plain")
        session = GuestSession(guest, baseline_platform.rng.fork("s"))
        public = guest.client.get_pub_key(session.sign_key, KEY_AUTH)
        with pytest.raises(AccessControlError):
            improved_platform.certifier.endorse(
                baseline_platform.manager, guest.domain.domid,
                guest.instance_id, public,
            )

    def test_tampered_cert_bytes_rejected(self, setup):
        platform, guest, _session, public = setup
        cert = platform.certifier.endorse(
            platform.manager, guest.domain.domid, guest.instance_id, public
        )
        blob = bytearray(cert.serialize())
        blob[12] ^= 0x01  # inside the modulus
        restored = EndorsementCertificate.deserialize(bytes(blob))
        assert not verify_endorsement(restored, platform.certifier.aik_public)


class TestStubDomainManager:
    @pytest.fixture
    def stub_platform(self):
        return build_platform(
            AccessMode.IMPROVED, seed=33, name="stub", stub_manager=True
        )

    def test_manager_runs_unprivileged(self, stub_platform):
        domain = stub_platform.xen.domain(stub_platform.manager.manager_domid)
        assert not domain.privileged
        assert domain.name == "vtpm-stubdom"

    def test_guests_work_normally(self, stub_platform):
        guest = stub_platform.add_guest("g")
        ek = guest.client.read_pubek()
        guest.client.take_ownership(b"o" * 20, b"s" * 20, ek)
        guest.client.extend(3, b"\x03" * 20)
        assert guest.client.pcr_read(3) != b"\x00" * 20

    def test_binding_published_under_own_subtree(self, stub_platform):
        guest = stub_platform.add_guest("g")
        domid = stub_platform.manager.manager_domid
        path = f"/local/domain/{domid}/vtpm/{guest.domain.uuid}/instance"
        value = stub_platform.xen.store.read(0, path, privileged=True)
        assert int(value) == guest.instance_id

    def test_stub_memory_still_needs_protection(self):
        """Stub isolation alone does not stop a privileged dump — the page
        protection does.  (Dom0 can foreign-map any unprotected frame.)"""
        from repro.attacks.memdump import MemoryDumpAttack
        from repro.core.config import AccessControlConfig

        unprotected = build_platform(
            AccessMode.IMPROVED, seed=34, name="stub-noprot",
            ac_config=AccessControlConfig.all_on().without("protect_memory"),
            stub_manager=True,
        )
        guest = unprotected.add_guest("victim")
        succeeded, _ = MemoryDumpAttack(unprotected).run(guest.instance_id)
        assert succeeded

        protected = build_platform(
            AccessMode.IMPROVED, seed=35, name="stub-prot", stub_manager=True
        )
        guest2 = protected.add_guest("victim")
        succeeded2, _ = MemoryDumpAttack(protected).run(guest2.instance_id)
        assert not succeeded2


class TestManagerRestart:
    def test_state_survives_restart(self, improved_platform):
        platform = improved_platform
        guests = [platform.add_guest(f"g{i}") for i in range(3)]
        values = {}
        for i, guest in enumerate(guests):
            guest.client.extend(4, hashlib.sha1(bytes([i])).digest())
            values[guest.domain.name] = guest.client.pcr_read(4)
        recovered = platform.restart_manager()
        assert recovered == 3
        for guest in guests:
            assert guest.client.pcr_read(4) == values[guest.domain.name]

    def test_restart_in_baseline(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        guest.client.extend(4, b"\x04" * 20)
        expected = guest.client.pcr_read(4)
        baseline_platform.restart_manager()
        assert guest.client.pcr_read(4) == expected

    def test_restart_fails_closed_on_platform_drift(self, improved_platform):
        """If the platform measurements moved while the daemon was down,
        the hardware TPM refuses the sealer root and nothing decrypts."""
        platform = improved_platform
        platform.add_guest("g")
        platform.manager.save_all()
        platform.sealer.lock()
        platform.hw_client.extend(0, hashlib.sha1(b"evil-bootkit").digest())
        with pytest.raises(SealingError):
            platform.restart_manager()

    def test_instance_ids_rotate_but_bindings_hold(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        old_id = guest.instance_id
        platform.restart_manager()
        assert guest.instance_id != old_id
        # The new instance is again bound to the same identity.
        instance = platform.manager.instance(guest.instance_id)
        identity = platform.identities.lookup(guest.domain.domid)
        assert instance.bound_identity_hex == identity.hex
        # And commands still flow.
        assert len(guest.client.get_random(4)) == 4
