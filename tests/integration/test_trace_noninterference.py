"""Tracing is an observer, not a participant.

The acceptance bar for the observability layer: running the *same* seeded
workload with tracing and counters enabled must produce byte-identical
state digests, the same fault sequence, and the same audit hash-chain
head as the untraced run — and the span trees it collects must be
structurally valid (every span closed, children nested inside parents,
no orphans left on the tracer stack).
"""

from __future__ import annotations

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform, fresh_timing_context
from repro.harness.chaos import default_chaos_plan, run_chaos_workload
from repro.obs import (
    CounterRegistry,
    InMemorySink,
    Tracer,
    load_jsonl,
    registry_scope,
    tracer_scope,
    validate_tree_dict,
)
from repro.tpm import marshal
from repro.tpm.constants import TPM_ORD_PcrRead, TPM_SUCCESS
from repro.util.bytesio import ByteWriter

SEED = 424242
COMMANDS = 120


def _pcr_read_wire(index: int) -> bytes:
    return marshal.build_command(
        TPM_ORD_PcrRead, ByteWriter().u32(index).getvalue()
    )


class TestChaosNonInterference:
    """The chaos demo, traced vs untraced, byte for byte."""

    @pytest.fixture(scope="class")
    def runs(self):
        plan = default_chaos_plan(SEED)
        untraced = run_chaos_workload(
            seed=SEED, commands=COMMANDS, plan=plan
        )
        tracer = Tracer(InMemorySink())
        registry = CounterRegistry()
        traced = run_chaos_workload(
            seed=SEED, commands=COMMANDS, plan=plan,
            tracer=tracer, counters=registry,
        )
        return untraced, traced, tracer, registry

    def test_digests_identical(self, runs):
        untraced, traced, _, _ = runs
        assert traced.digests == untraced.digests

    def test_audit_chain_identical(self, runs):
        untraced, traced, _, _ = runs
        assert untraced.audit_chain_hex  # the oracle must not be vacuous
        assert traced.audit_chain_hex == untraced.audit_chain_hex

    def test_fault_sequence_identical(self, runs):
        untraced, traced, _, _ = runs
        assert traced.event_signature == untraced.event_signature
        assert traced.fault_counts == untraced.fault_counts

    def test_span_trees_structurally_valid(self, runs):
        _, _, tracer, _ = runs
        assert tracer.open_spans == 0  # nothing left dangling
        spans = tracer.sink.validate()  # raises on any malformed tree
        assert spans >= tracer.roots_emitted > 0
        # The same oracle holds after a serialization round trip.
        import json

        for root in tracer.sink.roots:
            node = json.loads(json.dumps(root.to_dict()))
            assert validate_tree_dict(node) == sum(1 for _ in root.walk())

    def test_counters_saw_the_run(self, runs):
        untraced, _, _, registry = runs
        assert registry.total("ac.decisions") > 0
        assert registry.total("faults.injected") == untraced.total_faults
        exposition = registry.exposition()
        assert "ac.decisions{outcome=\"allow\"}" in exposition


class TestBatchedNonInterference:
    """The STATUS_BATCH vector path, traced vs untraced, byte for byte."""

    def _batched_run(self, tracer=None, registry=None):
        import contextlib

        fresh_timing_context()
        with contextlib.ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(tracer_scope(tracer))
            if registry is not None:
                stack.enter_context(registry_scope(registry))
            platform = build_platform(
                AccessMode.IMPROVED, seed=SEED, name="batch-ni"
            )
            guest = platform.add_guest("batcher")
            responses = []
            for round_no in range(6):
                wires = [_pcr_read_wire(i % 8) for i in range(round_no + 2)]
                responses.extend(guest.frontend.transport_batch(wires))
            digest = platform.manager.instance(
                guest.instance_id
            ).device.save_state_blob()
            chain = platform.audit.chain_head()
        return responses, digest, chain

    def test_traced_batches_byte_identical(self):
        plain_responses, plain_digest, plain_chain = self._batched_run()
        tracer = Tracer(InMemorySink())
        registry = CounterRegistry()
        traced_responses, traced_digest, traced_chain = self._batched_run(
            tracer, registry
        )
        assert traced_responses == plain_responses
        assert all(
            marshal.parse_response(r).return_code == TPM_SUCCESS
            for r in traced_responses
        )
        assert traced_digest == plain_digest
        assert traced_chain == plain_chain
        # The batch shape reached the counters and the span trees.
        assert registry.total("ring.batched_frames") == sum(
            range(2, 8)
        )
        batch_spans = tracer.sink.spans_named("ring.send_batch")
        assert [s.attrs["frames"] for s in batch_spans] == list(range(2, 8))
        assert tracer.open_spans == 0
        assert tracer.sink.validate() > 0


class TestSampledNonInterference:
    """Head sampling keeps tracing an observer at every rate: a 1-in-N
    traced run stays byte-identical to the untraced run, counters stay
    exact, and the sampling schedule itself is replay-identical."""

    RATES = (1, 4, 64)

    @pytest.fixture(scope="class")
    def untraced(self):
        plan = default_chaos_plan(SEED)
        return run_chaos_workload(seed=SEED, commands=COMMANDS, plan=plan)

    @pytest.mark.parametrize("rate", RATES)
    def test_sampled_chaos_is_byte_identical(self, untraced, rate):
        plan = default_chaos_plan(SEED)
        tracer = Tracer(InMemorySink(), sample_rate=rate)
        registry = CounterRegistry()
        sampled = run_chaos_workload(
            seed=SEED, commands=COMMANDS, plan=plan,
            tracer=tracer, counters=registry,
        )
        assert sampled.digests == untraced.digests
        assert sampled.audit_chain_hex == untraced.audit_chain_hex
        assert sampled.event_signature == untraced.event_signature
        assert sampled.fault_counts == untraced.fault_counts
        # Counters are exact regardless of which trees were kept.
        assert registry.total("faults.injected") == untraced.total_faults
        # The kept trees are intact and nothing dangles.
        assert tracer.open_spans == 0
        assert tracer.roots_emitted + tracer.roots_skipped == (
            tracer.roots_seen
        )
        if rate > 1:
            assert tracer.roots_skipped > 0
        tracer.sink.validate()

    @pytest.mark.parametrize("rate", RATES)
    def test_sampled_cluster_is_byte_identical(self, rate):
        from repro.cluster import default_cluster_plan, run_cluster_workload

        kwargs = dict(seed=SEED, hosts=3, guests=6, steps=10,
                      plan=default_cluster_plan(SEED, 3, crash_step=7),
                      storm=True)
        untraced = run_cluster_workload(**kwargs)
        tracer = Tracer(InMemorySink(), sample_rate=rate)
        registry = CounterRegistry()
        sampled = run_cluster_workload(
            tracer=tracer, counters=registry, **kwargs
        )
        assert sampled.state_digests == untraced.state_digests
        assert sampled.response_digests == untraced.response_digests
        assert sampled.event_signature == untraced.event_signature
        assert sampled.placement_signature == untraced.placement_signature
        assert sampled.migration_signature == untraced.migration_signature
        assert tracer.open_spans == 0
        tracer.sink.validate()

    @pytest.mark.parametrize("rate", RATES)
    def test_sampling_schedule_replays_identically(self, rate):
        """Two same-seed runs keep the very same trees: the schedule is a
        pure function of the root index, untouched by either timebase."""
        def schedule():
            plan = default_chaos_plan(SEED)
            tracer = Tracer(InMemorySink(), sample_rate=rate)
            run_chaos_workload(
                seed=SEED, commands=COMMANDS, plan=plan, tracer=tracer,
            )
            return (
                tracer.roots_seen,
                tracer.roots_skipped,
                [(r.name, r.start_virtual_us) for r in tracer.sink.roots],
            )

        assert schedule() == schedule()


class TestJsonlRoundTrip:
    def test_jsonl_stream_validates(self, tmp_path):
        from repro.obs import JsonlSink

        out = tmp_path / "trace.jsonl"
        fresh_timing_context()
        with out.open("w") as fh:
            sink = JsonlSink(fh)
            tracer = Tracer(sink)
            with tracer_scope(tracer):
                platform = build_platform(
                    AccessMode.IMPROVED, seed=7, name="jsonl-ni"
                )
                guest = platform.add_guest("writer")
                for i in range(5):
                    guest.frontend.transport(_pcr_read_wire(i))
            sink.flush()
        trees = load_jsonl(out.read_text())
        assert len(trees) == tracer.roots_emitted
        assert sum(validate_tree_dict(t) for t in trees) == (
            tracer.spans_started
        )
