"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.mode == "improved"
        assert args.seed == 2010

    def test_experiment_quick_flag(self):
        args = build_parser().parse_args(["experiment", "table1", "--quick"])
        assert args.id == "table1"
        assert args.quick

    def test_trace_options(self):
        args = build_parser().parse_args(
            ["trace", "--guests", "7", "--mix", "attestation"]
        )
        assert args.guests == 7
        assert args.mix == "attestation"


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--mode", "baseline", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "vTPM provisioned" in out
        assert "unsealed" in out

    def test_demo_improved(self, capsys):
        assert main(["demo", "--mode", "improved"]) == 0
        assert "[improved]" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_table3_quick(self, capsys):
        assert main(["experiment", "table3", "--quick"]) == 0
        assert "policy decision latency" in capsys.readouterr().out

    def test_trace_emits_loadable_trace(self, capsys):
        assert main(
            ["trace", "--guests", "2", "--rate", "30", "--duration", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        from repro.workloads.traces import SyntheticTrace

        trace = SyntheticTrace.loads(out)
        assert trace.guests == 2

    def test_attack_matrix_single_mode(self, capsys):
        assert main(["attack-matrix", "--mode", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "mem-dump-manager" in out
        assert "succeeded" in out
