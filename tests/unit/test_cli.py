"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.mode == "improved"
        assert args.seed == 2010

    def test_experiment_quick_flag(self):
        args = build_parser().parse_args(["experiment", "table1", "--quick"])
        assert args.id == "table1"
        assert args.quick

    def test_trace_options(self):
        args = build_parser().parse_args(
            ["trace", "--guests", "7", "--mix", "attestation"]
        )
        assert args.guests == 7
        assert args.mix == "attestation"
        assert args.workload is None

    def test_trace_workload_operand(self):
        args = build_parser().parse_args(["trace", "pcrread", "--count", "3"])
        assert args.workload == "pcrread"
        assert args.count == 3
        assert args.mode == "improved"

    def test_chaos_and_experiment_take_trace_path(self):
        assert build_parser().parse_args(
            ["chaos", "--trace", "out.jsonl"]
        ).trace == "out.jsonl"
        assert build_parser().parse_args(
            ["experiment", "table1", "--trace", "-"]
        ).trace == "-"

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.budget == "small"
        assert args.seed == 2010
        assert args.target is None
        assert args.replay is None
        assert args.inject_bug is None

    def test_verify_options(self):
        args = build_parser().parse_args(
            ["verify", "--budget", "deep", "--target", "40",
             "--inject-bug", "cache-epoch", "--output", "r.json"]
        )
        assert args.budget == "deep"
        assert args.target == 40
        assert args.inject_bug == "cache-epoch"
        assert args.output == "r.json"

    def test_chaos_and_cluster_take_conformance_flag(self):
        assert build_parser().parse_args(
            ["chaos", "--single", "--conformance"]
        ).conformance
        assert build_parser().parse_args(
            ["cluster", "--single", "--conformance"]
        ).conformance
        assert not build_parser().parse_args(["chaos"]).conformance


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--mode", "baseline", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "vTPM provisioned" in out
        assert "unsealed" in out

    def test_demo_improved(self, capsys):
        assert main(["demo", "--mode", "improved"]) == 0
        assert "[improved]" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_table3_quick(self, capsys):
        assert main(["experiment", "table3", "--quick"]) == 0
        assert "policy decision latency" in capsys.readouterr().out

    def test_trace_emits_loadable_trace(self, capsys):
        assert main(
            ["trace", "--guests", "2", "--rate", "30", "--duration", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        from repro.workloads.traces import SyntheticTrace

        trace = SyntheticTrace.loads(out)
        assert trace.guests == 2

    def test_attack_matrix_single_mode(self, capsys):
        assert main(["attack-matrix", "--mode", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "mem-dump-manager" in out
        assert "succeeded" in out

    def test_trace_live_workload_prints_span_tree(self, capsys):
        assert main(["trace", "pcrread", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "frontend.command" in out
        assert "authz" in out
        assert "engine" in out
        assert "== counters ==" in out
        assert 'ac.decisions{outcome="allow"}' in out

    def test_trace_live_unknown_workload(self, capsys):
        assert main(["trace", "frobnicate"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_chaos_supervised_single(self, capsys):
        assert main(
            ["chaos", "--supervised", "--single", "--commands", "150"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan=supervised-chaos" in out
        assert "malformed=0" in out
        assert "settled=True" in out

    def test_health_subcommand(self, capsys):
        assert main(["health", "--commands", "120"]) == 0
        out = capsys.readouterr().out
        assert "victim" in out
        assert "restarting->healthy[restart-probe-ok]" in out
        assert "settled=True" in out

    def test_health_no_faults(self, capsys):
        assert main(["health", "--commands", "60", "--no-faults"]) == 0
        out = capsys.readouterr().out
        assert "plan=fault-free" in out
        assert "state     : healthy" in out

    def test_chaos_single_with_trace_jsonl(self, capsys, tmp_path):
        from repro.obs import load_jsonl, validate_tree_dict

        out = tmp_path / "chaos.jsonl"
        assert main(
            ["chaos", "--single", "--commands", "40", "--trace", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "trace:" in stdout and "counters:" in stdout
        trees = load_jsonl(out.read_text())
        assert trees
        for tree in trees:
            validate_tree_dict(tree)

    def test_verify_small_smoke(self, capsys):
        # --target caps the sweep so the unit test stays fast; the full
        # 500+-schedule acceptance run lives in CI.
        assert main(["verify", "--target", "12"]) == 0
        out = capsys.readouterr().out
        assert "distinct schedules explored" in out
        assert "oracle violations           : 0" in out

    def test_verify_inject_bug_catches_and_shrinks(self, capsys, tmp_path):
        from repro.core import monitor as monitor_mod
        from repro.verify import load_repro

        artifact = tmp_path / "repro.json"
        assert main([
            "verify", "--inject-bug", "cache-epoch",
            "--output", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "injected bug caught and shrunk" in out
        repro = load_repro(str(artifact))
        assert 0 < len(repro.steps) <= 10
        assert repro.inject_bug == "cache-epoch"
        # The hook is always restored, pass or fail.
        assert monitor_mod.INJECT_STALE_POLICY_EPOCH is False

    def test_verify_replay_reproduces_then_exits_nonzero(
        self, capsys, tmp_path
    ):
        artifact = tmp_path / "repro.json"
        assert main([
            "verify", "--inject-bug", "cache-epoch",
            "--output", str(artifact),
        ]) == 0
        capsys.readouterr()
        assert main(["verify", "--replay", str(artifact)]) == 1
        assert "violation reproduces" in capsys.readouterr().out

    def test_verify_replay_clean_artifact_exits_zero(self, capsys, tmp_path):
        import json

        from repro.verify import REPRO_FORMAT

        artifact = tmp_path / "clean.json"
        artifact.write_text(json.dumps({
            "format": REPRO_FORMAT, "seed": 2010, "guests": 2,
            "supervised": False, "inject_bug": None,
            "steps": [{"guest": 0, "op": "extend", "arg": 1}],
            "violation": {"kind": "oracle-mismatch", "step_index": 0,
                          "step": None, "predicted": "", "observed": "",
                          "detail": ""},
        }))
        assert main(["verify", "--replay", str(artifact)]) == 0
        assert "replay clean" in capsys.readouterr().out
