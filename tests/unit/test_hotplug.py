"""Unit tests for the watch-driven hotplug agent."""

import pytest

from repro.vtpm.frontend import VtpmFrontend
from repro.vtpm.hotplug import VtpmHotplugAgent


class TestHotplugAgent:
    def test_unregistered_frontend_not_connected(self, baseline_platform):
        platform = baseline_platform
        agent = VtpmHotplugAgent(platform.xen, platform.manager)
        guest = platform.xen.create_domain("lonely", b"k")
        VtpmFrontend(platform.xen, guest, 0)  # publishes nodes, no register
        assert agent.connects == 0
        assert agent.backend_for(guest.domid) is None

    def test_register_after_publication_connects(self, baseline_platform):
        platform = baseline_platform
        agent = VtpmHotplugAgent(platform.xen, platform.manager)
        guest = platform.xen.create_domain("late", b"k")
        frontend = VtpmFrontend(platform.xen, guest, 0)
        agent.register_frontend(frontend)
        assert agent.connects == 1
        assert agent.backend_for(guest.domid) is not None
        assert frontend.connected

    def test_connect_is_idempotent(self, baseline_platform):
        platform = baseline_platform
        agent = VtpmHotplugAgent(platform.xen, platform.manager)
        guest = platform.xen.create_domain("once", b"k")
        frontend = VtpmFrontend(platform.xen, guest, 0)
        agent.register_frontend(frontend)
        agent.register_frontend(frontend)  # double registration
        assert agent.connects == 1
        assert platform.manager.instance_count == 1

    def test_disconnect_unknown_domain_is_noop(self, baseline_platform):
        platform = baseline_platform
        agent = VtpmHotplugAgent(platform.xen, platform.manager)
        platform.xen.store.write(
            0, "/local/domain/55/device/vtpm/0/state", "6", privileged=True
        )
        assert agent.disconnects == 0

    def test_reuses_existing_instance_for_vm(self, baseline_platform):
        """A reconnecting front-end (driver reload) gets its old instance."""
        platform = baseline_platform
        agent = VtpmHotplugAgent(platform.xen, platform.manager)
        guest = platform.xen.create_domain("reload", b"k")
        instance = platform.manager.create_instance(guest)
        frontend = VtpmFrontend(platform.xen, guest, 0)
        agent.register_frontend(frontend)
        assert agent.backend_for(guest.domid).instance_id == instance.instance_id
        assert platform.manager.instance_count == 1

    def test_state_four_does_not_retrigger(self, baseline_platform):
        platform = baseline_platform
        agent = VtpmHotplugAgent(platform.xen, platform.manager)
        guest = platform.xen.create_domain("steady", b"k")
        frontend = VtpmFrontend(platform.xen, guest, 0)
        agent.register_frontend(frontend)
        # mark_connected already wrote state=4 during connect; poke again:
        platform.xen.store.write(
            0, f"{frontend.device_path}/state", "4", privileged=True
        )
        assert agent.connects == 1
