"""Unit tests for full TPM state serialization and the secret inventory."""

import pytest

from repro.crypto.random_source import RandomSource
from repro.tpm.client import TpmClient
from repro.tpm.constants import TPM_KEY_SIGNING, TPM_KH_SRK
from repro.tpm.device import TpmDevice
from repro.tpm.state import TpmState
from repro.util.errors import MarshalError

from tests.conftest import OWNER, SRK

KEY_AUTH = b"K" * 20
DATA_AUTH = b"D" * 20


def _provisioned_device(rng):
    device = TpmDevice(rng.fork("d"), key_bits=512)
    device.power_on()
    client = TpmClient(device.execute, rng.fork("c"))
    ek = client.read_pubek()
    client.take_ownership(OWNER, SRK, ek)
    client.extend(10, b"\xab" * 20)
    blob = client.create_wrap_key(TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512)
    client.load_key2(TPM_KH_SRK, SRK, blob)
    from repro.tpm.nvram import NV_PER_AUTHREAD, NV_PER_AUTHWRITE

    client.nv_define(OWNER, 0x55, 16, NV_PER_AUTHREAD | NV_PER_AUTHWRITE, b"N" * 20)
    client.nv_write(b"N" * 20, 0x55, 0, b"nv-secret-conten")
    client.create_counter(OWNER, b"C" * 20, b"cnt0")
    return device, client


class TestSerialization:
    def test_roundtrip_preserves_everything(self, rng):
        device, client = _provisioned_device(rng)
        blob = device.save_state_blob()
        restored = TpmDevice.from_state_blob(blob)
        r_client = TpmClient(restored.execute, rng.fork("rc"))
        # Flags and owner
        assert restored.state.flags.owned
        assert restored.state.owner_auth == OWNER
        # PCRs
        assert r_client.pcr_read(10) == client.pcr_read(10)
        # EK/SRK identical moduli
        assert restored.state.keys.ek.keypair.public.n == \
            device.state.keys.ek.keypair.public.n
        assert restored.state.keys.srk.keypair.public.n == \
            device.state.keys.srk.keypair.public.n
        # NV
        assert r_client.nv_read(0x55, 0, 16, auth=b"N" * 20) == b"nv-secret-conten"
        # Counters
        counters = restored.state.counters.counters()
        assert len(counters) == 1
        # Volatile keys survive (migration semantics)
        assert restored.state.keys.loaded_count == 1

    def test_exclude_volatile(self, rng):
        device, _ = _provisioned_device(rng)
        blob = device.save_state_blob(include_volatile=False)
        restored = TpmDevice.from_state_blob(blob)
        assert restored.state.keys.loaded_count == 0

    def test_roundtrip_is_stable(self, rng):
        device, _ = _provisioned_device(rng)
        blob = device.save_state_blob()
        blob2 = TpmDevice.from_state_blob(blob).save_state_blob()
        assert blob == blob2

    def test_garbage_rejected(self):
        with pytest.raises(MarshalError):
            TpmState.deserialize(b"this is not TPM state")

    def test_truncated_rejected(self, rng):
        device, _ = _provisioned_device(rng)
        blob = device.save_state_blob()
        with pytest.raises(MarshalError):
            TpmState.deserialize(blob[: len(blob) // 2])

    def test_nv_capacity_preserved(self, rng):
        device = TpmDevice(rng.fork("cap"), key_bits=512, nv_capacity=9999)
        device.power_on()
        restored = TpmDevice.from_state_blob(device.save_state_blob())
        assert restored.state.nv.capacity == 9999


class TestSecretInventory:
    def test_contains_hierarchy_and_nv(self, rng):
        device, _ = _provisioned_device(rng)
        secrets = device.state.secret_material()
        blob = device.save_state_blob()
        # Every listed secret is literally present in the cleartext state.
        for secret in secrets:
            assert secret in blob
        assert OWNER in secrets
        assert device.state.keys.srk.keypair.serialize_private() in secrets

    def test_well_known_secrets_excluded(self, rng):
        device = TpmDevice(rng.fork("fresh"), key_bits=512)
        device.power_on()
        secrets = device.state.secret_material()
        assert b"\x00" * 20 not in secrets

    def test_unowned_has_fewer_secrets(self, rng):
        fresh = TpmDevice(rng.fork("f2"), key_bits=512)
        fresh.power_on()
        provisioned, _ = _provisioned_device(rng)
        assert len(fresh.state.secret_material()) < len(
            provisioned.state.secret_material()
        )


class TestOwnerClear:
    def test_clear_drops_secrets(self, rng):
        device, client = _provisioned_device(rng)
        before = len(device.state.secret_material())
        client.owner_clear(OWNER)
        after = len(device.state.secret_material())
        assert after < before
        assert device.state.keys.srk is None
        assert device.state.keys.loaded_count == 0
