"""Unit-level tests for attack toolkit internals and report plumbing."""

import pytest

from repro.attacks.memdump import MIN_SECRET_LEN, secrets_found
from repro.attacks.scenarios import AttackOutcome, AttackReport, matrix_rows
from repro.core.config import AccessMode


class TestSecretScanner:
    def test_finds_embedded_secret(self):
        secret = b"S" * 32
        image = b"\x00" * 100 + secret + b"\xff" * 100
        assert secrets_found(image, [secret]) == [secret]

    def test_ignores_short_strings(self):
        short = b"tiny"
        image = b"prefix" + short + b"suffix"
        assert len(short) < MIN_SECRET_LEN
        assert secrets_found(image, [short]) == []

    def test_partial_match_is_no_match(self):
        secret = b"A" * 32
        image = secret[:-1]  # one byte short
        assert secrets_found(image, [secret]) == []

    def test_multiple_hits_reported(self):
        a, b, c = b"A" * 20, b"B" * 20, b"C" * 20
        image = a + b
        assert secrets_found(image, [a, b, c]) == [a, b]

    def test_empty_inputs(self):
        assert secrets_found(b"", [b"X" * 20]) == []
        assert secrets_found(b"data", []) == []


class TestReports:
    def _report(self, attack, mode, outcome):
        return AttackReport(
            attack=attack, description="d", mode=mode,
            outcome=outcome, detail="detail",
        )

    def test_succeeded_property(self):
        ok = self._report("a", AccessMode.BASELINE, AttackOutcome.SUCCEEDED)
        blocked = self._report("a", AccessMode.IMPROVED, AttackOutcome.BLOCKED)
        assert ok.succeeded and not blocked.succeeded

    def test_matrix_rows_pairs_by_name(self):
        baseline = [
            self._report("x", AccessMode.BASELINE, AttackOutcome.SUCCEEDED),
            self._report("y", AccessMode.BASELINE, AttackOutcome.BLOCKED),
        ]
        improved = [
            self._report("x", AccessMode.IMPROVED, AttackOutcome.BLOCKED),
        ]
        rows = dict(
            (name, (b, i)) for name, b, i in matrix_rows(baseline, improved)
        )
        assert rows["x"] == ("succeeded", "blocked")
        assert rows["y"] == ("blocked", "?")


class TestExperimentRenders:
    """Every result type renders without error and mentions its title."""

    def test_all_render_titles(self):
        from repro.harness.experiments import (
            AblationResult,
            AttackMatrixResult,
            CreationLatencyResult,
            MigrationResult,
            PolicyScalingResult,
            RecoveryResult,
            ThroughputPoint,
            ThroughputScalingResult,
            WebAppBenchResult,
        )

        checks = [
            (AttackMatrixResult(rows=[("a", "succeeded", "blocked")],
                                details=[]), "Table 2"),
            (CreationLatencyResult(points=[(0, "baseline", 1.0),
                                           (0, "improved", 1.1)]), "Figure 2"),
            (MigrationResult(points=[(1.0, "baseline", 2.0),
                                     (1.0, "improved", 3.0)]), "Figure 3"),
            (PolicyScalingResult(rows=[(10, 0.5, 0.6)]), "Table 3"),
            (WebAppBenchResult(rows=[("no-vtpm", 100.0, 0.0)]), "Figure 4"),
            (AblationResult(rows=[("all-off", 1.0, 0.0)],
                            breakdown={"ac.audit.append": 1.0}), "Table 4"),
            (RecoveryResult(points=[(1, "baseline", 5.0),
                                    (1, "improved", 5.1)]), "Figure 6"),
            (ThroughputScalingResult(points=[
                ThroughputPoint(vms=1, mode="baseline", ops=10, elapsed_us=1e6),
                ThroughputPoint(vms=1, mode="improved", ops=10, elapsed_us=1.1e6),
            ]), "Figure 1"),
        ]
        for result, expected in checks:
            assert expected in result.render()

    def test_throughput_point_math(self):
        from repro.harness.experiments import ThroughputPoint

        point = ThroughputPoint(vms=2, mode="baseline", ops=500, elapsed_us=5e5)
        assert point.ops_per_sec == pytest.approx(1000.0)
        zero = ThroughputPoint(vms=1, mode="baseline", ops=0, elapsed_us=0.0)
        assert zero.ops_per_sec == 0.0

    def test_loadtest_render(self):
        from repro.harness.loadtest import LatencyLoadResult, LoadPoint
        from repro.metrics.stats import summarize

        result = LatencyLoadResult(points=[
            LoadPoint(mode="baseline", offered_per_sec=100.0, completed=5,
                      latency=summarize([1.0, 2.0])),
            LoadPoint(mode="improved", offered_per_sec=100.0, completed=5,
                      latency=summarize([1.5, 2.5])),
        ])
        assert "Figure 5" in result.render()
        assert result.rows()[0][0] == 100.0
