"""Unit tests for TPM wire framing."""

import pytest

from repro.tpm import marshal
from repro.tpm.constants import (
    TPM_SUCCESS,
    TPM_TAG_RQU_AUTH1_COMMAND,
    TPM_TAG_RQU_COMMAND,
    TPM_TAG_RSP_AUTH1_COMMAND,
    TPM_TAG_RSP_COMMAND,
)
from repro.tpm.marshal import AuthTrailer
from repro.util.errors import MarshalError, TpmError


class TestCommandFraming:
    def test_plain_command_roundtrip(self):
        wire = marshal.build_command(0x15, b"params")
        parsed = marshal.parse_command(wire)
        assert parsed.tag == TPM_TAG_RQU_COMMAND
        assert parsed.ordinal == 0x15
        assert parsed.params == b"params"
        assert parsed.auth is None

    def test_auth_command_roundtrip(self):
        trailer = AuthTrailer(
            handle=0x02000001,
            nonce_odd=b"\x0a" * 20,
            continue_session=True,
            auth_value=b"\x0b" * 20,
        )
        wire = marshal.build_command(0x17, b"p" * 7, auth=trailer)
        parsed = marshal.parse_command(wire)
        assert parsed.tag == TPM_TAG_RQU_AUTH1_COMMAND
        assert parsed.params == b"p" * 7
        assert parsed.auth == trailer

    def test_length_field_matches_frame(self):
        wire = marshal.build_command(0x15, b"abc")
        assert int.from_bytes(wire[2:6], "big") == len(wire)

    def test_bad_length_rejected(self):
        wire = marshal.build_command(0x15, b"abc") + b"extra"
        with pytest.raises(MarshalError):
            marshal.parse_command(wire)

    def test_unknown_tag_rejected(self):
        wire = bytearray(marshal.build_command(0x15, b""))
        wire[0:2] = b"\x00\x99"
        with pytest.raises(TpmError):
            marshal.parse_command(bytes(wire))

    def test_truncated_auth_trailer_rejected(self):
        trailer = AuthTrailer(1, b"\x00" * 20, False, b"\x00" * 20)
        wire = marshal.build_command(0x17, b"", auth=trailer)
        # Rebuild the header length to make a consistent-but-short frame.
        body = wire[: 10 + 10]
        hacked = wire[0:2] + len(body).to_bytes(4, "big") + body[6:]
        with pytest.raises(MarshalError):
            marshal.parse_command(hacked)


class TestResponseFraming:
    def test_plain_response_roundtrip(self):
        wire = marshal.build_response(TPM_SUCCESS, b"output")
        parsed = marshal.parse_response(wire)
        assert parsed.tag == TPM_TAG_RSP_COMMAND
        assert parsed.return_code == TPM_SUCCESS
        assert parsed.params == b"output"
        assert parsed.nonce_even is None

    def test_auth_response_roundtrip(self):
        wire = marshal.build_response(
            TPM_SUCCESS,
            b"out",
            nonce_even=b"\x01" * 20,
            continue_session=True,
            response_auth=b"\x02" * 20,
        )
        parsed = marshal.parse_response(wire)
        assert parsed.tag == TPM_TAG_RSP_AUTH1_COMMAND
        assert parsed.nonce_even == b"\x01" * 20
        assert parsed.continue_session is True
        assert parsed.response_auth == b"\x02" * 20
        assert parsed.params == b"out"

    def test_error_response_carries_code(self):
        wire = marshal.build_response(0x18)
        assert marshal.parse_response(wire).return_code == 0x18


class TestParamDigests:
    def test_command_digest_binds_ordinal(self):
        assert marshal.command_param_digest(1, b"p") != marshal.command_param_digest(
            2, b"p"
        )

    def test_command_digest_binds_params(self):
        assert marshal.command_param_digest(1, b"a") != marshal.command_param_digest(
            1, b"b"
        )

    def test_response_digest_binds_code(self):
        assert marshal.response_param_digest(
            0, 1, b"out"
        ) != marshal.response_param_digest(1, 1, b"out")
