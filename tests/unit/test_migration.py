"""Unit tests for vTPM live migration (both protocols)."""

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform
from repro.util.errors import MigrationError, VtpmError


@pytest.fixture
def pair_baseline():
    return (
        build_platform(AccessMode.BASELINE, seed=51, name="src-b"),
        build_platform(AccessMode.BASELINE, seed=52, name="dst-b"),
    )


@pytest.fixture
def pair_improved():
    return (
        build_platform(AccessMode.IMPROVED, seed=51, name="src-i"),
        build_platform(AccessMode.IMPROVED, seed=52, name="dst-i"),
    )


def _target_vm(destination, guest):
    return destination.xen.create_domain(
        guest.domain.name,
        kernel_image=guest.domain.kernel_image,
        config=dict(guest.domain.config),
    )


class TestPlaintextMigration:
    def test_state_moves(self, pair_baseline):
        source, destination = pair_baseline
        guest = source.add_guest("mover")
        guest.client.extend(6, b"\x66" * 20)
        expected = guest.client.pcr_read(6)
        target_vm = _target_vm(destination, guest)
        package = source.migration.export_plaintext(guest.domain.uuid)
        instance = destination.migration.import_plaintext(package, target_vm)
        from repro.tpm.client import TpmClient

        client = TpmClient(
            lambda wire: destination.manager.handle_command(
                target_vm.domid, instance.instance_id, wire
            ),
            destination.rng.fork("mc"),
        )
        assert client.pcr_read(6) == expected

    def test_source_instance_destroyed(self, pair_baseline):
        source, _destination = pair_baseline
        guest = source.add_guest("mover")
        source.migration.export_plaintext(guest.domain.uuid)
        with pytest.raises(VtpmError):
            source.manager.instance_for_vm(guest.domain.uuid)

    def test_payload_contains_cleartext(self, pair_baseline):
        source, _ = pair_baseline
        guest = source.add_guest("mover")
        secrets = source.manager.instance(
            guest.instance_id
        ).device.state.secret_material()
        package = source.migration.export_plaintext(guest.domain.uuid)
        assert any(s in package.payload for s in secrets)

    def test_wrong_magic_rejected(self, pair_baseline):
        _source, destination = pair_baseline
        from repro.vtpm.migration import MigrationPackage

        vm = destination.xen.create_domain("t", b"k")
        with pytest.raises(MigrationError):
            destination.migration.import_plaintext(
                MigrationPackage(payload=b"XXXXXXXX" + b"\x00" * 32), vm
            )


class TestSealedMigration:
    def test_state_moves_encrypted(self, pair_improved):
        source, destination = pair_improved
        guest = source.add_guest("mover")
        guest.client.extend(6, b"\x66" * 20)
        expected = guest.client.pcr_read(6)
        secrets = source.manager.instance(
            guest.instance_id
        ).device.state.secret_material()
        target_vm = _target_vm(destination, guest)
        offer = destination.migration.prepare_target()
        package = source.migration.export_sealed(guest.domain.uuid, offer)
        assert not any(s in package.payload for s in secrets if len(s) >= 16)
        instance = destination.migration.import_sealed(package, target_vm)
        from repro.tpm.client import TpmClient

        client = TpmClient(
            lambda wire: destination.manager.handle_command(
                target_vm.domid, instance.instance_id, wire
            ),
            destination.rng.fork("mc"),
        )
        assert client.pcr_read(6) == expected

    def test_offer_is_single_use(self, pair_improved):
        source, destination = pair_improved
        guest = source.add_guest("mover")
        target_vm = _target_vm(destination, guest)
        offer = destination.migration.prepare_target()
        package = source.migration.export_sealed(guest.domain.uuid, offer)
        destination.migration.import_sealed(package, target_vm)
        replay_vm = destination.xen.create_domain(
            "replayed", kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        with pytest.raises(MigrationError):
            destination.migration.import_sealed(package, replay_vm)

    def test_package_bound_to_offer(self, pair_improved):
        source, destination = pair_improved
        guest = source.add_guest("mover")
        target_vm = _target_vm(destination, guest)
        offer = destination.migration.prepare_target()
        stale_offer = destination.migration.prepare_target()
        package = source.migration.export_sealed(guest.domain.uuid, offer)
        # Import consumes the matching offer only; tamper the offer id.
        import struct

        hacked = bytearray(package.payload)
        hacked[8:12] = struct.pack(">I", stale_offer.offer_id)
        from repro.vtpm.migration import MigrationPackage

        with pytest.raises(MigrationError, match="nonce"):
            destination.migration.import_sealed(
                MigrationPackage(payload=bytes(hacked)), target_vm
            )

    def test_identity_continuity_enforced(self, pair_improved):
        source, destination = pair_improved
        guest = source.add_guest("mover")
        offer = destination.migration.prepare_target()
        package = source.migration.export_sealed(guest.domain.uuid, offer)
        imposter = destination.xen.create_domain(
            "imposter", kernel_image=b"different-kernel"
        )
        with pytest.raises(MigrationError, match="identity"):
            destination.migration.import_sealed(package, imposter)

    def test_wrong_destination_cannot_import(self, pair_improved):
        """A package sealed for host B is useless to host C."""
        source, destination = pair_improved
        host_c = build_platform(AccessMode.IMPROVED, seed=77, name="host-c")
        guest = source.add_guest("mover")
        offer_b = destination.migration.prepare_target()
        package = source.migration.export_sealed(guest.domain.uuid, offer_b)
        vm_on_c = host_c.xen.create_domain(
            guest.domain.name, kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        with pytest.raises(MigrationError):
            host_c.migration.import_sealed(package, vm_on_c)

    def test_replayed_offer_recognised_and_audited(self, pair_improved):
        source, destination = pair_improved
        guest = source.add_guest("mover")
        target_vm = _target_vm(destination, guest)
        offer = destination.migration.prepare_target()
        package = source.migration.export_sealed(guest.domain.uuid, offer)
        destination.migration.import_sealed(package, target_vm)
        replay_vm = destination.xen.create_domain(
            "replayed", kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        with pytest.raises(MigrationError, match="replay"):
            destination.migration.import_sealed(package, replay_vm)
        denials = [
            r for r in destination.audit.for_subject("migration")
            if not r.allowed and "replay" in r.reason
        ]
        assert denials, "replayed offer must leave an audit record"

    def test_offer_expires_in_virtual_time(self, pair_improved):
        from repro.sim.timing import get_context

        source, destination = pair_improved
        guest = source.add_guest("mover")
        target_vm = _target_vm(destination, guest)
        offer = destination.migration.prepare_target(ttl_us=500.0)
        txn = source.migration.begin_export_sealed(guest.domain.uuid, offer)
        get_context().clock.advance(10_000.0)
        with pytest.raises(MigrationError, match="expired"):
            destination.migration.import_sealed(txn.package, target_vm)
        denials = [
            r for r in destination.audit.for_subject("migration")
            if not r.allowed and "expired" in r.reason
        ]
        assert denials, "expired offer must leave an audit record"
        # The source never got an ack, so the guest's vTPM keeps serving.
        source.migration.abort_export(txn)
        assert source.manager.instance_for_vm(guest.domain.uuid)

    def test_expired_offer_refused_at_source(self, pair_improved):
        from repro.sim.timing import get_context

        source, destination = pair_improved
        guest = source.add_guest("mover")
        offer = destination.migration.prepare_target(ttl_us=500.0)
        get_context().clock.advance(10_000.0)
        with pytest.raises(MigrationError, match="expired"):
            source.migration.begin_export_sealed(guest.domain.uuid, offer)

    def test_consumed_offer_refused_at_source(self, pair_improved):
        source, destination = pair_improved
        guest = source.add_guest("mover")
        target_vm = _target_vm(destination, guest)
        offer = destination.migration.prepare_target()
        package = source.migration.export_sealed(guest.domain.uuid, offer)
        destination.migration.import_sealed(package, target_vm)
        other = source.add_guest("mover2")
        with pytest.raises(MigrationError, match="consumed"):
            source.migration.begin_export_sealed(other.domain.uuid, offer)

    def test_migration_counters_and_span(self, pair_improved):
        from repro import obs

        source, destination = pair_improved
        guest = source.add_guest("mover")
        target_vm = _target_vm(destination, guest)
        sink = obs.InMemorySink()
        with obs.tracer_scope(obs.Tracer(sink)), \
                obs.registry_scope(obs.CounterRegistry()) as counters:
            offer = destination.migration.prepare_target()
            package = source.migration.export_sealed(guest.domain.uuid, offer)
            destination.migration.import_sealed(package, target_vm)
        assert counters.value("vtpm.migration.export_begun", protocol="sealed") == 1
        assert counters.value("vtpm.migration.export_committed") == 1
        assert counters.value("vtpm.migration.bytes_moved") == len(package)
        assert counters.value("vtpm.migration.imported", protocol="sealed") == 1
        spans = sink.spans_named("vtpm.migrate")
        assert {s.attrs["op"] for s in spans} == {"export", "import"}
        export_span = next(s for s in spans if s.attrs["op"] == "export")
        assert export_span.attrs["bytes"] == len(package)

    def test_aborted_export_counted(self, pair_improved):
        from repro import obs

        source, destination = pair_improved
        guest = source.add_guest("mover")
        with obs.registry_scope(obs.CounterRegistry()) as counters:
            offer = destination.migration.prepare_target()
            txn = source.migration.begin_export_sealed(guest.domain.uuid, offer)
            source.migration.abort_export(txn)
            source.migration.abort_export(txn)  # idempotent: counted once
        assert counters.value("vtpm.migration.export_aborted") == 1
        assert counters.value("vtpm.migration.export_committed") == 0

    def test_requires_hw_client(self, pair_improved):
        source, _ = pair_improved
        from repro.vtpm.migration import MigrationEndpoint

        endpoint = MigrationEndpoint(source.manager, source.rng.fork("x"))
        with pytest.raises(MigrationError, match="hardware TPM"):
            endpoint.prepare_target()
