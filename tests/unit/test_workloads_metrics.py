"""Unit tests for workload generators and the metrics plumbing."""

import pytest

from repro.crypto.random_source import RandomSource
from repro.metrics.recorder import LatencyRecorder, VirtualTimer
from repro.metrics.stats import overhead_pct, percentile, summarize
from repro.metrics.tables import format_table
from repro.util.errors import ReproError
from repro.workloads.mixes import (
    MIX_ATTESTATION,
    MIX_MEASUREMENT,
    MIX_MIXED,
    MIX_SEALED_STORAGE,
    OPERATIONS,
    CommandMix,
    GuestSession,
)
from repro.workloads.traces import SyntheticTrace


class TestCommandMix:
    def test_draw_respects_support(self):
        rng = RandomSource(1)
        for _ in range(100):
            assert MIX_MIXED.draw(rng) in MIX_MIXED.weights

    def test_sequence_deterministic(self):
        a = MIX_MIXED.sequence(RandomSource(2), 50)
        b = MIX_MIXED.sequence(RandomSource(2), 50)
        assert a == b

    def test_weights_shape_distribution(self):
        mix = CommandMix("skewed", {"extend": 9.0, "pcr_read": 1.0})
        rng = RandomSource(3)
        draws = mix.sequence(rng, 1000)
        extends = draws.count("extend")
        assert 820 <= extends <= 960  # ~900 expected

    def test_unknown_operation_rejected(self):
        with pytest.raises(ReproError):
            CommandMix("bad", {"no_such_op": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            CommandMix("empty", {})

    def test_negative_weight_rejected(self):
        with pytest.raises(ReproError):
            CommandMix("neg", {"extend": -1.0})

    def test_standard_mixes_valid(self):
        for mix in (MIX_MEASUREMENT, MIX_SEALED_STORAGE, MIX_ATTESTATION, MIX_MIXED):
            assert set(mix.weights) <= set(OPERATIONS)


class TestGuestSession:
    def test_every_operation_runs(self, baseline_platform):
        guest = baseline_platform.add_guest("ops")
        session = GuestSession(guest, baseline_platform.rng.fork("s"))
        for op in OPERATIONS:
            session.run_operation(op)  # must not raise

    def test_unknown_operation_rejected(self, baseline_platform):
        guest = baseline_platform.add_guest("ops")
        session = GuestSession(guest, baseline_platform.rng.fork("s"))
        with pytest.raises(ReproError):
            session.run_operation("frobnicate")

    def test_operation_names_cover_constant(self, baseline_platform):
        guest = baseline_platform.add_guest("ops")
        session = GuestSession(guest, baseline_platform.rng.fork("s"))
        assert set(session.operation_names()) == set(OPERATIONS)


class TestSyntheticTrace:
    def test_poisson_sorted_and_bounded(self):
        trace = SyntheticTrace.poisson(
            RandomSource(4), guests=3, rate_per_guest_per_sec=100,
            duration_s=0.5, mix=MIX_MEASUREMENT,
        )
        times = [e.time_us for e in trace]
        assert times == sorted(times)
        assert all(0 <= t < 0.5e6 for t in times)
        assert {e.guest_index for e in trace} <= {0, 1, 2}

    def test_rate_roughly_respected(self):
        trace = SyntheticTrace.poisson(
            RandomSource(5), guests=2, rate_per_guest_per_sec=200,
            duration_s=1.0, mix=MIX_MEASUREMENT,
        )
        # Expect ~400 arrivals; allow generous Poisson slack.
        assert 300 <= len(trace) <= 500

    def test_serialization_roundtrip(self):
        trace = SyntheticTrace.poisson(
            RandomSource(6), guests=2, rate_per_guest_per_sec=50,
            duration_s=0.2, mix=MIX_MIXED,
        )
        restored = SyntheticTrace.loads(trace.dumps())
        assert restored.guests == trace.guests
        assert len(restored) == len(trace)
        assert restored.entries[0] == trace.entries[0]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            SyntheticTrace.poisson(RandomSource(7), 0, 10, 1, MIX_MIXED)
        with pytest.raises(ReproError):
            SyntheticTrace.poisson(RandomSource(7), 1, 0, 1, MIX_MIXED)

    def test_loads_rejects_garbage(self):
        with pytest.raises(ReproError):
            SyntheticTrace.loads("no header here")


class TestStats:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(22.0)
        assert summary.median == 3.0
        assert summary.minimum == 1.0 and summary.maximum == 100.0
        assert summary.p95 > summary.median

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0
        assert percentile([1.0], 0.99) == 1.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ReproError):
            percentile([], 0.5)
        with pytest.raises(ReproError):
            percentile([1.0], 1.5)

    def test_overhead_pct(self):
        assert overhead_pct(100.0, 110.0) == pytest.approx(10.0)
        assert overhead_pct(100.0, 95.0) == pytest.approx(-5.0)
        with pytest.raises(ReproError):
            overhead_pct(0.0, 1.0)

    def test_empty_summary_rejected(self):
        with pytest.raises(ReproError):
            summarize([])


class TestRecorder:
    def test_measure_records_virtual_time(self, timing_context):
        recorder = LatencyRecorder()
        with recorder.measure("op"):
            timing_context.clock.advance(250)
        assert recorder.samples("op") == [250.0]

    def test_summaries(self, timing_context):
        recorder = LatencyRecorder()
        for delta in (10, 20, 30):
            with recorder.measure("op"):
                timing_context.clock.advance(delta)
        assert recorder.summary("op").mean == pytest.approx(20.0)
        assert recorder.names() == ["op"]

    def test_missing_name_rejected(self):
        with pytest.raises(ReproError):
            LatencyRecorder().summary("nothing")

    def test_negative_sample_rejected(self):
        with pytest.raises(ReproError):
            LatencyRecorder().record("x", -1.0)

    def test_timer(self, timing_context):
        with VirtualTimer() as timer:
            timing_context.clock.advance(42)
        assert timer.elapsed_us == 42.0


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bee"], [[1, 2.5], ["xx", 1000.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bee" in lines[2]
        assert "1,000.0" in out

    def test_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a"], [[1, 2]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])

    def test_no_rows_ok(self):
        out = format_table(["col"], [])
        assert "col" in out
