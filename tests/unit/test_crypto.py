"""Unit tests for the crypto substrate."""

import pytest

from repro.crypto.hashes import sha1, sha256
from repro.crypto.hmac_util import constant_time_equal, hmac_sha1, hmac_sha256
from repro.crypto.kdf import derive_key
from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.util.errors import CryptoError


class TestHashes:
    def test_sha1_known_vector(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_sha256_known_vector(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_hash_charges_time(self, timing_context):
        before = timing_context.clock.now_us
        sha1(b"x" * 10_000)
        assert timing_context.clock.now_us - before > 40  # ~42us for 10KB


class TestHmac:
    def test_hmac_sha1_rfc2202_vector(self):
        # RFC 2202 test case 2.
        out = hmac_sha1(b"Jefe", b"what do ya want for nothing?")
        assert out.hex() == "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"

    def test_hmac_sha256_rfc4231_vector(self):
        out = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert out.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"diff")


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a, b = RandomSource(5), RandomSource(5)
        assert a.bytes(64) == b.bytes(64)

    def test_different_seed_different_stream(self):
        assert RandomSource(5).bytes(32) != RandomSource(6).bytes(32)

    def test_fork_is_independent(self):
        root = RandomSource(1)
        child1 = root.fork("a")
        child2 = root.fork("b")
        assert child1.bytes(16) != child2.bytes(16)

    def test_fork_is_deterministic(self):
        assert RandomSource(1).fork("x").bytes(8) == RandomSource(1).fork("x").bytes(8)

    def test_randint_below_in_range(self):
        rng = RandomSource(2)
        for _ in range(200):
            assert 0 <= rng.randint_below(7) < 7

    def test_randint_below_rejects_nonpositive(self):
        with pytest.raises(CryptoError):
            RandomSource(0).randint_below(0)

    def test_randint_bits_sets_top_bit(self):
        rng = RandomSource(3)
        for bits in (8, 64, 256):
            value = rng.randint_bits(bits)
            assert value.bit_length() == bits

    def test_uniform_in_interval(self):
        rng = RandomSource(4)
        for _ in range(100):
            x = rng.uniform(2.0, 3.0)
            assert 2.0 <= x < 3.0

    def test_expovariate_positive(self):
        rng = RandomSource(5)
        samples = [rng.expovariate(0.001) for _ in range(100)]
        assert all(s > 0 for s in samples)
        # Mean should be in the ballpark of 1/rate = 1000.
        assert 300 < sum(samples) / len(samples) < 3000

    def test_shuffle_permutation(self):
        rng = RandomSource(6)
        items = list(range(20))
        shuffled = rng.shuffle(list(items))
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_choice_from_empty_rejected(self):
        with pytest.raises(CryptoError):
            RandomSource(7).choice([])

    def test_nonce_is_20_bytes(self):
        assert len(RandomSource(8).nonce()) == 20

    def test_reseed_changes_stream(self):
        a, b = RandomSource(9), RandomSource(9)
        b.reseed(b"more entropy")
        assert a.bytes(16) != b.bytes(16)

    def test_negative_byte_count_rejected(self):
        with pytest.raises(CryptoError):
            RandomSource(1).bytes(-1)


class TestRsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(512, RandomSource(b"rsa-test"))

    def test_sign_verify_roundtrip(self, keypair):
        digest = sha1(b"message")
        signature = keypair.sign_sha1(digest)
        assert keypair.public.verify_sha1(digest, signature)

    def test_verify_rejects_wrong_digest(self, keypair):
        signature = keypair.sign_sha1(sha1(b"message"))
        assert not keypair.public.verify_sha1(sha1(b"other"), signature)

    def test_verify_rejects_corrupted_signature(self, keypair):
        signature = bytearray(keypair.sign_sha1(sha1(b"message")))
        signature[5] ^= 0xFF
        assert not keypair.public.verify_sha1(sha1(b"message"), bytes(signature))

    def test_encrypt_decrypt_roundtrip(self, keypair):
        rng = RandomSource(b"enc")
        ciphertext = keypair.public.encrypt(b"secret payload", rng)
        assert keypair.decrypt(ciphertext) == b"secret payload"

    def test_decrypt_rejects_tampered(self, keypair):
        rng = RandomSource(b"enc2")
        ciphertext = bytearray(keypair.public.encrypt(b"data", rng))
        ciphertext[0] ^= 1
        with pytest.raises(CryptoError):
            keypair.decrypt(bytes(ciphertext))

    def test_plaintext_size_limit(self, keypair):
        rng = RandomSource(b"enc3")
        limit = keypair.public.byte_length - 11
        keypair.public.encrypt(b"x" * limit, rng)  # exactly at the limit: OK
        with pytest.raises(CryptoError, match="exceeds max"):
            keypair.public.encrypt(b"x" * (limit + 1), rng)

    def test_private_serialization_roundtrip(self, keypair):
        blob = keypair.serialize_private()
        restored = RsaKeyPair.deserialize_private(blob)
        assert restored.public.n == keypair.public.n
        assert restored.d == keypair.d
        digest = sha1(b"after restore")
        assert keypair.public.verify_sha1(digest, restored.sign_sha1(digest))

    def test_keygen_deterministic(self):
        a = generate_keypair(512, RandomSource(b"det"))
        b = generate_keypair(512, RandomSource(b"det"))
        assert a.public.n == b.public.n

    def test_keygen_rejects_tiny_keys(self):
        with pytest.raises(CryptoError):
            generate_keypair(256, RandomSource(b"x"))

    def test_keygen_rejects_odd_bits(self):
        with pytest.raises(CryptoError):
            generate_keypair(513, RandomSource(b"x"))

    def test_modulus_has_declared_bits(self, keypair):
        assert keypair.public.n.bit_length() == 512

    def test_sign_rejects_wrong_digest_size(self, keypair):
        with pytest.raises(CryptoError):
            keypair.sign_sha1(b"too short")

    def test_fingerprint_stable(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 32


class TestSymmetric:
    def test_roundtrip(self, rng):
        key = SymmetricKey.generate(rng)
        blob = key.encrypt(b"hello world" * 50, rng)
        assert key.decrypt(blob) == b"hello world" * 50

    def test_tamper_detected(self, rng):
        key = SymmetricKey.generate(rng)
        blob = key.encrypt(b"payload", rng)
        bad = EncryptedBlob(
            nonce=blob.nonce,
            ciphertext=bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:],
            tag=blob.tag,
        )
        with pytest.raises(CryptoError, match="tag mismatch"):
            key.decrypt(bad)

    def test_wrong_key_detected(self, rng):
        blob = SymmetricKey.generate(rng).encrypt(b"payload", rng)
        other = SymmetricKey.generate(rng)
        with pytest.raises(CryptoError):
            other.decrypt(blob)

    def test_nonce_fresh_per_encryption(self, rng):
        key = SymmetricKey.generate(rng)
        a = key.encrypt(b"same", rng)
        b = key.encrypt(b"same", rng)
        assert a.nonce != b.nonce
        assert a.ciphertext != b.ciphertext

    def test_serialization_roundtrip(self, rng):
        key = SymmetricKey.generate(rng)
        blob = key.encrypt(b"wire format", rng)
        restored = EncryptedBlob.deserialize(blob.serialize())
        assert key.decrypt(restored) == b"wire format"

    def test_bad_key_size_rejected(self):
        with pytest.raises(CryptoError):
            SymmetricKey(b"short")

    def test_empty_plaintext(self, rng):
        key = SymmetricKey.generate(rng)
        assert key.decrypt(key.encrypt(b"", rng)) == b""


class TestKdf:
    def test_deterministic(self):
        a = derive_key(b"secret", b"salt", b"info", 32)
        b = derive_key(b"secret", b"salt", b"info", 32)
        assert a == b and len(a) == 32

    def test_different_info_different_key(self):
        assert derive_key(b"s", b"salt", b"a") != derive_key(b"s", b"salt", b"b")

    def test_different_salt_different_key(self):
        assert derive_key(b"s", b"x", b"i") != derive_key(b"s", b"y", b"i")

    def test_long_output(self):
        out = derive_key(b"s", b"salt", b"info", 100)
        assert len(out) == 100
        # Prefix property of expand: first 32 bytes match the short call.
        assert out[:32] == derive_key(b"s", b"salt", b"info", 32)

    def test_invalid_length_rejected(self):
        with pytest.raises(CryptoError):
            derive_key(b"s", b"salt", b"info", 0)
