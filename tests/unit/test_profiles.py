"""Unit/integration tests for policy profiles (least privilege per guest)."""

import hashlib

import pytest

from repro.core.config import AccessMode
from repro.core.policy import CommandClass, PolicyEngine
from repro.core.profiles import (
    PROFILE_ATTESTATION_ONLY,
    PROFILE_MONITOR,
    PROFILE_OWNER,
    PROFILE_SEALED_STORAGE,
    PROFILES,
    PolicyProfile,
    profile_by_name,
)
from repro.harness.builder import build_platform
from repro.tpm.constants import TPM_KH_SRK
from repro.util.errors import AccessControlError, TpmError

OWNER = b"prof-owner-auth!!!!!"
SRK = b"prof-srk-auth!!!!!!!"


class TestProfileDefinitions:
    def test_registry_complete(self):
        assert set(PROFILES) == {
            "owner", "attestation-only", "sealed-storage", "monitor",
        }

    def test_lookup(self):
        assert profile_by_name("monitor") is PROFILE_MONITOR
        with pytest.raises(AccessControlError):
            profile_by_name("nope")

    def test_empty_profile_rejected(self):
        with pytest.raises(AccessControlError):
            PolicyProfile(name="x", classes=frozenset())

    def test_unknown_class_rejected(self):
        with pytest.raises(AccessControlError):
            PolicyProfile(name="x", classes=frozenset({CommandClass.UNKNOWN}))

    def test_apply_installs_exact_grants(self):
        engine = PolicyEngine()
        rules = PROFILE_MONITOR.apply(engine, "aa" * 32, 1)
        assert len(rules) == len(PROFILE_MONITOR.classes)
        from repro.tpm.constants import TPM_ORD_Extend, TPM_ORD_PcrRead

        assert engine.decide("aa" * 32, 1, TPM_ORD_PcrRead).allowed
        assert not engine.decide("aa" * 32, 1, TPM_ORD_Extend).allowed

    def test_owner_profile_matches_grant_owner(self):
        via_profile = PolicyEngine()
        PROFILE_OWNER.apply(via_profile, "aa" * 32, 1)
        via_grant = PolicyEngine()
        via_grant.grant_owner("aa" * 32, 1)
        from repro.tpm.dispatch import registered_ordinals

        for ordinal in registered_ordinals():
            assert (
                via_profile.decide("aa" * 32, 1, ordinal).allowed
                == via_grant.decide("aa" * 32, 1, ordinal).allowed
            ), hex(ordinal)


class TestProfiledGuests:
    def test_attestation_only_guest(self):
        platform = build_platform(AccessMode.IMPROVED, seed=40)
        guest = platform.add_guest("attester", profile=PROFILE_ATTESTATION_ONLY)
        # Can measure and read...
        guest.client.extend(12, hashlib.sha1(b"app").digest())
        guest.client.pcr_read(12)
        # ...but cannot take ownership (owner-admin) or define NV (storage-admin).
        ek_fails = pytest.raises(TpmError)
        with ek_fails:
            ek = guest.client.read_pubek()  # READ: fine
            guest.client.take_ownership(OWNER, SRK, ek)  # OWNER_ADMIN: denied
        from repro.tpm.nvram import NV_PER_AUTHWRITE

        with pytest.raises(TpmError):
            guest.client.nv_define(OWNER, 0x10, 8, NV_PER_AUTHWRITE, b"N" * 20)

    def test_monitor_profile_is_read_only(self):
        platform = build_platform(AccessMode.IMPROVED, seed=41)
        guest = platform.add_guest("watcher", profile=PROFILE_MONITOR)
        guest.client.pcr_read(0)
        guest.client.get_random(8)
        with pytest.raises(TpmError):
            guest.client.extend(12, b"\x01" * 20)

    def test_sealed_storage_profile_cannot_measure(self):
        platform = build_platform(AccessMode.IMPROVED, seed=42)
        guest = platform.add_guest("vault", profile=PROFILE_SEALED_STORAGE)
        with pytest.raises(TpmError):
            guest.client.extend(12, b"\x01" * 20)

    def test_profiles_do_not_widen_cross_instance(self):
        """A profiled guest still cannot touch anyone else's instance."""
        from repro.tpm.constants import TPM_AUTHFAIL, TPM_ORD_PcrRead
        from repro.tpm.marshal import build_command, parse_response
        from repro.util.errors import VtpmError

        platform = build_platform(AccessMode.IMPROVED, seed=43)
        victim = platform.add_guest("victim")
        watcher = platform.add_guest("watcher", profile=PROFILE_MONITOR)
        # The fail-closed backend refuses the cross-instance re-bind...
        with pytest.raises(VtpmError):
            watcher.backend.rebind(victim.instance_id)
        # ...and a forged packet at the victim's instance id is denied by
        # the monitor even though the watcher profile grants READ.
        wire = build_command(TPM_ORD_PcrRead, (0).to_bytes(4, "big"))
        resp = platform.manager.handle_command(
            watcher.domain.domid, victim.instance_id, wire
        )
        assert parse_response(resp).return_code == TPM_AUTHFAIL

    def test_denials_show_in_audit(self):
        platform = build_platform(AccessMode.IMPROVED, seed=44)
        guest = platform.add_guest("limited", profile=PROFILE_MONITOR)
        with pytest.raises(TpmError):
            guest.client.extend(12, b"\x01" * 20)
        denials = platform.audit.denials()
        assert denials and denials[-1].operation == "TPM_Extend"

    def test_baseline_ignores_profiles(self):
        """Profiles are an improved-mode feature; baseline allows all."""
        platform = build_platform(AccessMode.BASELINE, seed=45)
        guest = platform.add_guest("anything", profile=PROFILE_MONITOR)
        guest.client.extend(12, b"\x01" * 20)  # not denied
