"""Unit tests for the resilience layer: health records, breakers,
admission control, the monitor's health gate, fail-closed re-bind, and
the supervised restart leg."""

from __future__ import annotations

import pytest

from repro.core.config import AccessMode
from repro.core.policy import CommandClass
from repro.crypto.random_source import RandomSource
from repro.faults import FaultInjector, FaultKind, FaultPlan, injector_scope, spec
from repro.harness.builder import build_platform
from repro.resilience import (
    LEGAL_TRANSITIONS,
    AdmissionConfig,
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    HealthState,
    HealthThresholds,
    InstanceHealth,
    PROBE_WIRE,
)
from repro.sim.timing import charge, get_context
from repro.tpm import marshal
from repro.tpm.constants import (
    TPM_ORD_Extend,
    TPM_ORD_PcrRead,
    TPM_RESOURCES,
    TPM_SUCCESS,
)
from repro.tpm.constants import TPM_FAIL
from repro.util.errors import SupervisionError, VtpmError


def _pcr_read_wire(index: int = 0) -> bytes:
    return marshal.build_command(TPM_ORD_PcrRead, index.to_bytes(4, "big"))


def _extend_wire(index: int = 0) -> bytes:
    return marshal.build_command(
        TPM_ORD_Extend, index.to_bytes(4, "big") + b"\xaa" * 20
    )


def _rc(response: bytes) -> int:
    return marshal.parse_response(response).return_code


class TestHealthStateMachine:
    def test_happy_walk_degrade_quarantine(self):
        record = InstanceHealth("vm-1", 1)
        for _ in range(2):
            record.note_failure("tpm-fail")
        assert record.state is HealthState.DEGRADED
        for _ in range(2):
            record.note_failure("retry-exhausted")
        assert record.state is HealthState.QUARANTINED

    def test_success_streak_heals_degraded(self):
        record = InstanceHealth("vm-1", 1)
        record.note_failure("tpm-fail")
        record.note_failure("tpm-fail")
        assert record.state is HealthState.DEGRADED
        for _ in range(6):
            record.note_success()
        assert record.state is HealthState.HEALTHY
        assert record.consecutive_failures == 0

    def test_failure_resets_success_streak(self):
        record = InstanceHealth("vm-1", 1)
        record.note_failure("tpm-fail")
        record.note_failure("tpm-fail")
        for _ in range(5):
            record.note_success()
        record.note_failure("deadline-miss")  # streak broken at 5/6
        for _ in range(5):
            record.note_success()
        assert record.state is HealthState.DEGRADED

    def test_illegal_transition_raises(self):
        record = InstanceHealth("vm-1", 1)
        with pytest.raises(SupervisionError, match="illegal health transition"):
            record.transition(HealthState.RESTARTING, "no quarantine first")
        # FAILED is terminal: nothing leaves it.
        record.transition(HealthState.QUARANTINED, "forced")
        record.transition(HealthState.FAILED, "forced")
        for target in HealthState:
            with pytest.raises(SupervisionError):
                record.transition(target, "escape attempt")

    def test_unknown_failure_kind_rejected(self):
        record = InstanceHealth("vm-1", 1)
        with pytest.raises(SupervisionError, match="unknown failure kind"):
            record.note_failure("cosmic-ray")

    def test_history_records_every_transition(self):
        record = InstanceHealth("vm-1", 1)
        for _ in range(4):
            record.note_failure("tpm-fail")
        assert [(frm, to) for frm, to, _ in record.history] == [
            (HealthState.HEALTHY, HealthState.DEGRADED),
            (HealthState.DEGRADED, HealthState.QUARANTINED),
        ]
        assert all(
            (frm, to) in LEGAL_TRANSITIONS for frm, to, _ in record.history
        )

    def test_custom_thresholds(self):
        record = InstanceHealth(
            "vm-1", 1, thresholds=HealthThresholds(degrade_after=1,
                                                   quarantine_after=2)
        )
        record.note_failure("tpm-fail")
        assert record.state is HealthState.DEGRADED
        record.note_failure("tpm-fail")
        assert record.state is HealthState.QUARANTINED


class TestCircuitBreaker:
    def _breaker(self, **kwargs) -> CircuitBreaker:
        return CircuitBreaker(
            "t", RandomSource(b"breaker-test"), **kwargs
        )

    def test_opens_after_threshold(self):
        breaker = self._breaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_success_resets_failure_count(self):
        breaker = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_blocks_then_half_opens(self):
        breaker = self._breaker(failure_threshold=1, cooldown_us=1_000.0)
        breaker.record_failure()
        assert not breaker.allow()  # cooldown not elapsed
        assert breaker.remaining_cooldown_us() > 0.0
        charge("supervisor.wait", breaker.remaining_cooldown_us())
        assert breaker.allow()  # the half-open probe slot
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # exactly one probe at a time

    def test_probe_success_closes(self):
        breaker = self._breaker(failure_threshold=1, cooldown_us=100.0)
        breaker.record_failure()
        charge("supervisor.wait", breaker.remaining_cooldown_us())
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = self._breaker(failure_threshold=1, cooldown_us=100.0)
        breaker.record_failure()
        charge("supervisor.wait", breaker.remaining_cooldown_us())
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_jitter_is_additive_only(self):
        for i in range(8):
            breaker = CircuitBreaker(
                f"b{i}", RandomSource(b"jitter" + bytes([i])),
                failure_threshold=1, cooldown_us=1_000.0,
            )
            breaker.record_failure()
            assert 1_000.0 <= breaker.current_cooldown_us <= 1_500.0

    def test_sequence_is_seed_deterministic(self):
        def drive(seed: bytes):
            breaker = CircuitBreaker(
                "d", RandomSource(seed), failure_threshold=1,
                cooldown_us=500.0,
            )
            breaker.record_failure()
            charge("supervisor.wait", breaker.remaining_cooldown_us())
            breaker.allow()
            breaker.record_failure()
            return breaker.sequence()

        a = drive(b"same-seed")
        # Same virtual clock offsets relative to the events matter, not
        # absolute time, so compare the state trail + cooldown draws.
        b = drive(b"same-seed")
        assert [s for s, _ in a] == [s for s, _ in b] == [
            "open", "half-open", "open"
        ]

    def test_force_open_requires_reearning(self):
        breaker = self._breaker(cooldown_us=200.0)
        breaker.force_open()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()


class TestAdmissionController:
    def _health(self, state: HealthState = HealthState.HEALTHY) -> InstanceHealth:
        record = InstanceHealth("vm-adm", 1)
        # Walk legally to the requested state.
        walks = {
            HealthState.HEALTHY: (),
            HealthState.DEGRADED: (HealthState.DEGRADED,),
            HealthState.QUARANTINED: (HealthState.QUARANTINED,),
            HealthState.FAILED: (HealthState.QUARANTINED, HealthState.FAILED),
            HealthState.RESTARTING: (HealthState.QUARANTINED,
                                     HealthState.RESTARTING),
        }
        for target in walks[state]:
            record.transition(target, "test-walk")
        return record

    def _breaker(self) -> CircuitBreaker:
        return CircuitBreaker("adm", RandomSource(b"adm"))

    def test_healthy_admits_everything_in_budget(self):
        ctl = AdmissionController("vm-adm", AdmissionConfig(max_depth=4))
        verdicts = ctl.verdicts(
            [_pcr_read_wire()] * 3, self._health(), self._breaker()
        )
        assert verdicts == [None, None, None]
        assert ctl.admitted == 3

    def test_depth_shed_beyond_max(self):
        ctl = AdmissionController(
            "vm-adm", AdmissionConfig(max_depth=2, deadline_us=1e9)
        )
        verdicts = ctl.verdicts(
            [_pcr_read_wire()] * 5, self._health(), self._breaker()
        )
        assert verdicts[:2] == [None, None]
        for shed in verdicts[2:]:
            assert _rc(shed) == TPM_RESOURCES
        assert ctl.shed_counts == {"depth": 3}

    def test_deadline_shed_with_frozen_estimate(self):
        ctl = AdmissionController(
            "vm-adm",
            AdmissionConfig(max_depth=100, deadline_us=100.0,
                            service_estimate_us=40.0, ewma_alpha=0.0),
        )
        verdicts = ctl.verdicts(
            [_pcr_read_wire()] * 6, self._health(), self._breaker()
        )
        # backlog×40 > 100 first fails at backlog 3 (120 > 100).
        assert verdicts[:3] == [None, None, None]
        assert ctl.shed_counts == {"deadline": 3}

    def test_ewma_tracks_observations(self):
        ctl = AdmissionController(
            "vm-adm", AdmissionConfig(service_estimate_us=30.0, ewma_alpha=0.5)
        )
        ctl.observe_service_us(10.0)
        assert ctl.service_estimate_us == pytest.approx(20.0)
        ctl.observe_service_us(20.0)
        assert ctl.service_estimate_us == pytest.approx(20.0)

    def test_degraded_admits_only_reads(self):
        ctl = AdmissionController("vm-adm")
        verdicts = ctl.verdicts(
            [_pcr_read_wire(), _extend_wire(), _pcr_read_wire()],
            self._health(HealthState.DEGRADED),
            self._breaker(),
        )
        assert verdicts[0] is None and verdicts[2] is None
        assert _rc(verdicts[1]) == TPM_RESOURCES
        assert ctl.shed_counts == {"degraded": 1}

    def test_quarantined_sheds_busy_failed_sheds_fail(self):
        ctl = AdmissionController("vm-adm")
        [busy] = ctl.verdicts(
            [_pcr_read_wire()], self._health(HealthState.QUARANTINED),
            self._breaker(),
        )
        assert _rc(busy) == TPM_RESOURCES
        [dead] = ctl.verdicts(
            [_pcr_read_wire()], self._health(HealthState.FAILED),
            self._breaker(),
        )
        assert _rc(dead) == TPM_FAIL

    def test_open_breaker_sheds(self):
        ctl = AdmissionController("vm-adm")
        breaker = self._breaker()
        breaker.force_open()
        verdicts = ctl.verdicts(
            [_pcr_read_wire()] * 2, self._health(), breaker
        )
        assert all(_rc(v) == TPM_RESOURCES for v in verdicts)
        assert ctl.shed_counts == {"breaker": 2}

    def test_half_open_admits_exactly_one_probe(self):
        ctl = AdmissionController("vm-adm")
        breaker = CircuitBreaker(
            "adm", RandomSource(b"adm"), cooldown_us=10.0
        )
        breaker.force_open()
        charge("supervisor.wait", breaker.remaining_cooldown_us())
        verdicts = ctl.verdicts(
            [_pcr_read_wire()] * 3, self._health(), breaker
        )
        assert verdicts[0] is None  # the single half-open slot
        assert all(_rc(v) == TPM_RESOURCES for v in verdicts[1:])

    def test_every_shed_is_well_formed(self):
        ctl = AdmissionController("vm-adm", AdmissionConfig(max_depth=1))
        verdicts = ctl.verdicts(
            [_pcr_read_wire()] * 4, self._health(HealthState.QUARANTINED),
            self._breaker(),
        )
        for shed in verdicts:
            parsed = marshal.parse_response(shed)  # raises if malformed
            assert parsed.return_code == TPM_RESOURCES


class TestHealthGateAndRing:
    """The supervisor wired into a real platform: gate + ring admission."""

    def _supervised(self, **kwargs):
        platform = build_platform(AccessMode.IMPROVED, seed=7, name="sup")
        guest = platform.add_guest("alice")
        supervisor = platform.enable_supervision(**kwargs)
        return platform, guest, supervisor

    def test_gate_allows_healthy(self):
        _, guest, supervisor = self._supervised()
        assert supervisor.gate(guest.instance_id, CommandClass.MEASURE) is None

    def test_gate_degraded_read_only(self):
        _, guest, supervisor = self._supervised()
        record = supervisor.record_for(guest.domain.uuid)
        record.transition(HealthState.DEGRADED, "test")
        assert supervisor.gate(guest.instance_id, CommandClass.READ) is None
        reason = supervisor.gate(guest.instance_id, CommandClass.MEASURE)
        assert reason and "read-only" in reason

    def test_gate_quarantined_and_failed_deny_all(self):
        _, guest, supervisor = self._supervised()
        record = supervisor.record_for(guest.domain.uuid)
        record.transition(HealthState.QUARANTINED, "test")
        assert supervisor.gate(guest.instance_id, CommandClass.READ)
        record.transition(HealthState.FAILED, "test")
        for cls in CommandClass:
            assert supervisor.gate(guest.instance_id, cls)

    def test_gate_unknown_instance_is_neutral(self):
        _, _, supervisor = self._supervised()
        assert supervisor.gate(999, CommandClass.READ) is None

    def test_monitor_denies_gated_command_end_to_end(self):
        _, guest, supervisor = self._supervised()
        record = supervisor.record_for(guest.domain.uuid)
        record.transition(HealthState.DEGRADED, "test")
        # Reads still flow; a measurement is shed at the ring with BUSY.
        assert _rc(guest.frontend.transport(_pcr_read_wire())) == TPM_SUCCESS
        assert _rc(guest.frontend.transport(_extend_wire())) == TPM_RESOURCES

    def test_unhealthy_index_tracks_transitions(self):
        # The monitor's per-command fast path is a membership test on
        # this index; it must mirror the health state machine exactly.
        platform, guest, supervisor = self._supervised()
        index = supervisor.unhealthy_instances
        assert platform.monitor.health_index is index
        assert guest.instance_id not in index
        record = supervisor.record_for(guest.domain.uuid)
        record.transition(HealthState.DEGRADED, "test")
        assert index[guest.instance_id] is record
        record.transition(HealthState.HEALTHY, "test")
        assert guest.instance_id not in index

    def test_unhealthy_index_routes_to_gate_end_to_end(self):
        platform, guest, supervisor = self._supervised()
        record = supervisor.record_for(guest.domain.uuid)
        record.transition(HealthState.QUARANTINED, "wedged")
        assert supervisor.unhealthy_instances
        # Denied end-to-end while quarantined (index routes to the gate).
        assert _rc(guest.frontend.transport(_pcr_read_wire())) != TPM_SUCCESS

    def test_unsupervised_platform_unaffected(self):
        platform = build_platform(AccessMode.IMPROVED, seed=8, name="raw")
        guest = platform.add_guest("bob")
        assert platform.supervisor is None
        assert _rc(guest.frontend.transport(_extend_wire())) == TPM_SUCCESS

    def test_double_supervision_rejected(self):
        platform, _, _ = self._supervised()
        with pytest.raises(Exception, match="already supervised"):
            platform.enable_supervision()

    def test_guests_added_after_enable_are_supervised(self):
        platform, _, supervisor = self._supervised()
        late = platform.add_guest("late")
        assert supervisor.record_for(late.domain.uuid) is not None
        assert late.backend.supervision is supervisor


class TestFailClosedRebind:
    """Satellite (b): rebind verifies the owning identity, fail closed."""

    def test_improved_rebind_to_foreign_instance_refused(self):
        platform = build_platform(AccessMode.IMPROVED, seed=9, name="rb")
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        with pytest.raises(VtpmError, match="rebind refused"):
            attacker.backend.rebind(victim.instance_id)
        # Fail closed: the old binding survives, service continues.
        assert attacker.backend.instance_id == attacker.instance_id
        assert _rc(attacker.frontend.transport(_pcr_read_wire())) == TPM_SUCCESS

    def test_refused_rebind_is_audited(self):
        platform = build_platform(AccessMode.IMPROVED, seed=9, name="rb2")
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        before = len(platform.audit.denials())
        with pytest.raises(VtpmError):
            attacker.backend.rebind(victim.instance_id)
        denials = platform.audit.denials()
        assert len(denials) == before + 1
        assert denials[-1].operation == "VTPM_Rebind"
        assert platform.audit.verify_chain()

    def test_rogue_attack_regression_improved_blocked(self):
        """The original rogue-rebind attack, replayed against the new
        fail-closed backend: blocked before a single command flows."""
        from repro.attacks.rogue import RogueRebindAttack

        platform = build_platform(AccessMode.IMPROVED, seed=10, name="rb3")
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        ok, detail = RogueRebindAttack(platform, attacker, victim).run()
        assert not ok
        assert "refused the re-bind" in detail

    def test_rogue_attack_regression_baseline_still_works(self):
        """Baseline has no identity binding, so the attack still lands —
        the differential the paper's improvement is measured against."""
        from repro.attacks.rogue import RogueRebindAttack

        platform = build_platform(AccessMode.BASELINE, seed=10, name="rb4")
        victim = platform.add_guest("victim")
        attacker = platform.add_guest("attacker")
        ok, _ = RogueRebindAttack(platform, attacker, victim).run()
        assert ok

    def test_rebind_to_own_instance_allowed(self):
        platform = build_platform(AccessMode.IMPROVED, seed=11, name="rb5")
        guest = platform.add_guest("alice")
        guest.backend.rebind(guest.instance_id)  # no-op, same identity
        assert _rc(guest.frontend.transport(_pcr_read_wire())) == TPM_SUCCESS


def _wedge_plan(device: str, fires: int, flaps=()) -> FaultPlan:
    return FaultPlan(
        name="unit-wedge",
        seed=1,
        specs=(
            spec(FaultKind.WEDGE, every=1, max_fires=fires,
                 match={"device": device}),
            spec(FaultKind.FLAP, at=tuple(flaps)) if flaps else
            spec(FaultKind.FLAP, at=(10_000,)),
        ),
    )


class TestSupervisedRestart:
    def _storm(self, platform, guest, supervisor, plan, pokes=8):
        """Drive reads at a wedged guest until quarantine resolves."""
        injector = FaultInjector(plan, audit=platform.audit)
        wire = _pcr_read_wire()
        with injector_scope(injector):
            for _ in range(pokes):
                guest.frontend.transport(wire)
                record = supervisor.record_for(guest.domain.uuid)
                if record.restarts or record.terminal:
                    break
        return injector

    def test_wedge_storm_quarantines_and_recovers(self):
        platform = build_platform(AccessMode.IMPROVED, seed=12, name="storm")
        guest = platform.add_guest("alice")
        platform.manager.save_all()
        supervisor = platform.enable_supervision(
            thresholds=HealthThresholds(degrade_after=1, quarantine_after=2),
            breaker_failure_threshold=10,  # keep the breaker out of the way
        )
        old_instance = guest.instance_id
        self._storm(platform, guest, supervisor,
                    _wedge_plan(f"vtpm{old_instance}", fires=8))
        record = supervisor.record_for(guest.domain.uuid)
        assert record.restarts == 1
        assert record.state is HealthState.HEALTHY
        assert record.instance_id != old_instance
        # The restored instance is re-bound, re-attested and serving.
        supervisor.drain()
        assert supervisor.settled()
        assert _rc(guest.frontend.transport(_pcr_read_wire())) == TPM_SUCCESS
        # The lifecycle ran exactly the legal path.
        assert [(f.value, t.value) for f, t, _ in record.history] == [
            ("healthy", "degraded"),
            ("degraded", "quarantined"),
            ("quarantined", "restarting"),
            ("restarting", "healthy"),
        ]
        # The monitor's unhealthy-instance index drained with the storm —
        # no stale entry survives the restart's id change.
        assert supervisor.unhealthy_instances == {}

    def test_flapping_restart_retries_then_recovers(self):
        platform = build_platform(AccessMode.IMPROVED, seed=13, name="flap")
        guest = platform.add_guest("alice")
        platform.manager.save_all()
        supervisor = platform.enable_supervision(
            thresholds=HealthThresholds(degrade_after=1, quarantine_after=2),
            breaker_failure_threshold=10,
        )
        self._storm(
            platform, guest, supervisor,
            _wedge_plan(f"vtpm{guest.instance_id}", fires=8, flaps=(0,)),
        )
        record = supervisor.record_for(guest.domain.uuid)
        assert record.restarts == 2  # first flapped, second recovered
        assert record.state is HealthState.HEALTHY
        causes = [cause for _, _, cause in record.history]
        assert "probe-flap" in causes

    def test_restart_budget_exhaustion_fails_instance(self):
        platform = build_platform(AccessMode.IMPROVED, seed=14, name="fail")
        guest = platform.add_guest("alice")
        platform.manager.save_all()
        supervisor = platform.enable_supervision(
            thresholds=HealthThresholds(degrade_after=1, quarantine_after=2,
                                        max_restarts=2),
            breaker_failure_threshold=10,
        )
        self._storm(
            platform, guest, supervisor,
            _wedge_plan(f"vtpm{guest.instance_id}", fires=8,
                        flaps=(0, 1, 2, 3)),
        )
        record = supervisor.record_for(guest.domain.uuid)
        assert record.state is HealthState.FAILED
        assert record.restarts == 2
        # A failed instance refuses every ordinal, permanently.
        assert _rc(guest.frontend.transport(_pcr_read_wire())) == TPM_FAIL
        assert supervisor.settled()  # failed is a settled terminal state

    def test_restart_charges_virtual_time(self):
        platform = build_platform(AccessMode.IMPROVED, seed=15, name="time")
        guest = platform.add_guest("alice")
        platform.manager.save_all()
        supervisor = platform.enable_supervision(
            thresholds=HealthThresholds(degrade_after=1, quarantine_after=2),
            breaker_failure_threshold=10,
        )
        before = get_context().clock.now_us
        self._storm(platform, guest, supervisor,
                    _wedge_plan(f"vtpm{guest.instance_id}", fires=8))
        assert supervisor.record_for(guest.domain.uuid).restarts == 1
        # A wedge charge (30ms each) plus the restart charge moved the clock.
        assert get_context().clock.now_us - before > 60_000.0


class TestSupervisionNeutrality:
    """Fault-free supervision must charge zero extra virtual time."""

    def _run(self, supervised: bool) -> float:
        from repro.harness.builder import fresh_timing_context

        fresh_timing_context()
        platform = build_platform(AccessMode.IMPROVED, seed=21, name="neutral")
        guest = platform.add_guest("alice")
        if supervised:
            platform.enable_supervision()
        wire = _pcr_read_wire()
        start = get_context().clock.now_us
        for _ in range(200):
            guest.frontend.transport(wire)
        return get_context().clock.now_us - start

    def test_virtual_time_identical_with_and_without(self):
        assert self._run(False) == self._run(True)

    def test_probe_wire_is_read_class(self):
        from repro.core.policy import classify_ordinal

        ordinal = int.from_bytes(PROBE_WIRE[6:10], "big")
        assert classify_ordinal(ordinal) is CommandClass.READ
