"""Unit tests for physical memory, regions, and foreign mapping."""

import pytest

from repro.xen.memory import PAGE_SIZE, MemoryRegion, PhysicalMemory
from repro.util.errors import PageFault, XenError


@pytest.fixture
def memory():
    return PhysicalMemory(total_pages=64)


class TestAllocation:
    def test_allocate_assigns_owner(self, memory):
        frames = memory.allocate(owner=3, count=4)
        assert len(frames) == 4
        for frame in frames:
            assert memory.page(frame).owner == 3

    def test_out_of_memory(self, memory):
        memory.allocate(1, 60)
        with pytest.raises(XenError, match="out of memory"):
            memory.allocate(1, 5)

    def test_zero_allocation_rejected(self, memory):
        with pytest.raises(XenError):
            memory.allocate(1, 0)

    def test_free_scrubs_contents(self, memory):
        [frame] = memory.allocate(1, 1)
        memory.write(1, frame, 0, b"sensitive")
        page = memory.page(frame)
        memory.free([frame])
        assert b"sensitive" not in bytes(page.data)
        with pytest.raises(PageFault):
            memory.page(frame)

    def test_frames_owned_by(self, memory):
        a = memory.allocate(1, 2)
        b = memory.allocate(2, 3)
        assert memory.frames_owned_by(1) == sorted(a)
        assert memory.frames_owned_by(2) == sorted(b)


class TestOwnerAccess:
    def test_read_write_roundtrip(self, memory):
        [frame] = memory.allocate(5, 1)
        memory.write(5, frame, 100, b"hello")
        assert memory.read(5, frame, 100, 5) == b"hello"

    def test_non_owner_rejected(self, memory):
        [frame] = memory.allocate(5, 1)
        with pytest.raises(PageFault):
            memory.read(6, frame, 0, 1)
        with pytest.raises(PageFault):
            memory.write(6, frame, 0, b"x")

    def test_shared_with_allows_access(self, memory):
        [frame] = memory.allocate(5, 1)
        memory.page(frame).shared_with.add(6)
        memory.write(6, frame, 0, b"via grant")
        assert memory.read(6, frame, 0, 9) == b"via grant"

    def test_bounds_checked(self, memory):
        [frame] = memory.allocate(5, 1)
        with pytest.raises(PageFault):
            memory.write(5, frame, PAGE_SIZE - 2, b"xyz")
        with pytest.raises(PageFault):
            memory.read(5, frame, PAGE_SIZE, 1)


class TestForeignMap:
    def test_privileged_can_map_foreign(self, memory):
        [frame] = memory.allocate(7, 1)
        memory.write(7, frame, 0, b"guest data")
        snapshot = memory.foreign_map(0, frame, requester_privileged=True)
        assert snapshot.startswith(b"guest data")

    def test_unprivileged_rejected(self, memory):
        [frame] = memory.allocate(7, 1)
        with pytest.raises(PageFault, match="not privileged"):
            memory.foreign_map(8, frame, requester_privileged=False)

    def test_protected_frame_refused_even_privileged(self, memory):
        [frame] = memory.allocate(7, 1)
        memory.set_protected(frame)
        with pytest.raises(PageFault, match="hypervisor-protected"):
            memory.foreign_map(0, frame, requester_privileged=True)

    def test_protected_frame_refused_even_for_owner(self, memory):
        """The dump interface is closed for everyone; owners use their
        private mapping."""
        [frame] = memory.allocate(0, 1)
        memory.set_protected(frame)
        with pytest.raises(PageFault):
            memory.foreign_map(0, frame, requester_privileged=True)
        # ...but the owner's normal read path still works.
        memory.write(0, frame, 0, b"still mine")
        assert memory.read(0, frame, 0, 10) == b"still mine"

    def test_unprotect_reopens(self, memory):
        [frame] = memory.allocate(7, 1)
        memory.set_protected(frame)
        memory.set_protected(frame, False)
        memory.foreign_map(0, frame, requester_privileged=True)


class TestMemoryRegion:
    def test_cross_page_write_read(self, memory):
        frames = memory.allocate(9, 3)
        region = MemoryRegion(memory, 9, frames)
        data = bytes(range(256)) * 40  # 10240 bytes, spans 3 pages
        region.write(100, data)
        assert region.read(100, len(data)) == data

    def test_region_bounds(self, memory):
        region = MemoryRegion(memory, 9, memory.allocate(9, 1))
        with pytest.raises(PageFault):
            region.write(PAGE_SIZE - 1, b"ab")
        with pytest.raises(PageFault):
            region.read(0, PAGE_SIZE + 1)

    def test_region_size(self, memory):
        region = MemoryRegion(memory, 9, memory.allocate(9, 2))
        assert region.size == 2 * PAGE_SIZE

    def test_set_protected_covers_all_frames(self, memory):
        region = MemoryRegion(memory, 9, memory.allocate(9, 2))
        region.set_protected(True)
        for frame in region.frames:
            assert memory.page(frame).protected
