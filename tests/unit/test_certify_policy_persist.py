"""Unit tests: TPM_CertifyKey and policy-engine persistence."""

import hashlib

import pytest

from repro.core.policy import ANY, CommandClass, PolicyEngine
from repro.tpm.constants import (
    TPM_AUTHFAIL,
    TPM_INVALID_KEYUSAGE,
    TPM_KEY_BIND,
    TPM_KEY_SIGNING,
    TPM_KEY_STORAGE,
    TPM_KH_SRK,
    TPM_ORD_CertifyKey,
    TPM_ORD_PcrRead,
)
from repro.tpm.structures import CertifyInfo
from repro.util.errors import TpmError

from tests.conftest import OWNER, SRK

AIK_AUTH = b"A" * 20
KEY_AUTH = b"K" * 20


@pytest.fixture
def aik(owned_client):
    blob, _ = owned_client.make_identity(OWNER, AIK_AUTH, b"test-aik")
    return owned_client.load_key2(TPM_KH_SRK, SRK, blob)


@pytest.fixture
def bind_key(owned_client):
    blob = owned_client.create_wrap_key(
        TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_BIND, 512
    )
    return owned_client.load_key2(TPM_KH_SRK, SRK, blob)


class TestCertifyKey:
    def test_certificate_verifies(self, owned_client, aik, bind_key):
        info_bytes, signature = owned_client.certify_key(
            aik, AIK_AUTH, bind_key, KEY_AUTH, b"\x21" * 20
        )
        aik_pub = owned_client.get_pub_key(aik, AIK_AUTH)
        assert aik_pub.verify_sha1(hashlib.sha1(info_bytes).digest(), signature)
        info = CertifyInfo.deserialize(info_bytes)
        target_pub = owned_client.get_pub_key(bind_key, KEY_AUTH)
        assert info.public.n == target_pub.n
        assert info.key_usage == TPM_KEY_BIND
        assert info.anti_replay == b"\x21" * 20
        assert not info.pcr_bound

    def test_pcr_bound_key_flagged(self, owned_client, aik, tpm_device):
        from repro.tpm.pcr import PcrSelection

        selection = PcrSelection([3])
        digest = tpm_device.state.pcrs.composite_digest(selection)
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512,
            pcr_selection=selection, digest_at_release=digest,
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        info_bytes, _sig = owned_client.certify_key(
            aik, AIK_AUTH, handle, KEY_AUTH, b"\x00" * 20
        )
        info = CertifyInfo.deserialize(info_bytes)
        assert info.pcr_bound
        assert info.digest_at_release == digest

    def test_wrong_target_auth_rejected(self, owned_client, aik, bind_key):
        with pytest.raises(TpmError) as err:
            owned_client.certify_key(aik, AIK_AUTH, bind_key, b"X" * 20,
                                     b"\x00" * 20)
        assert err.value.code == TPM_AUTHFAIL

    def test_nonsigning_certifier_rejected(self, owned_client, bind_key):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_STORAGE, 512
        )
        storage = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        with pytest.raises(TpmError) as err:
            owned_client.certify_key(storage, KEY_AUTH, bind_key, KEY_AUTH,
                                     b"\x00" * 20)
        assert err.value.code == TPM_INVALID_KEYUSAGE

    def test_anti_replay_binds_signature(self, owned_client, aik, bind_key):
        info1, sig1 = owned_client.certify_key(
            aik, AIK_AUTH, bind_key, KEY_AUTH, b"\x01" * 20
        )
        info2, _sig2 = owned_client.certify_key(
            aik, AIK_AUTH, bind_key, KEY_AUTH, b"\x02" * 20
        )
        aik_pub = owned_client.get_pub_key(aik, AIK_AUTH)
        # sig1 does not cover info2.
        assert not aik_pub.verify_sha1(hashlib.sha1(info2).digest(), sig1)

    def test_classified_for_policy(self):
        from repro.core.policy import classify_ordinal

        assert classify_ordinal(TPM_ORD_CertifyKey) is CommandClass.USE_KEY


class TestPolicyPersistence:
    def test_roundtrip_preserves_decisions(self):
        engine = PolicyEngine()
        engine.grant_owner("aa" * 32, 1)
        engine.add_rule(ANY, 2, CommandClass.READ)
        engine.add_rule("bb" * 32, ANY, CommandClass.MEASURE)
        restored = PolicyEngine.deserialize(engine.serialize())
        assert restored.rule_count == engine.rule_count
        probes = [
            ("aa" * 32, 1, TPM_ORD_PcrRead),
            ("cc" * 32, 2, TPM_ORD_PcrRead),
            ("bb" * 32, 9, 0x14),  # Extend
            ("cc" * 32, 9, 0x14),
        ]
        for subject, instance, ordinal in probes:
            assert (
                restored.decide(subject, instance, ordinal).allowed
                == engine.decide(subject, instance, ordinal).allowed
            )

    def test_empty_policy_roundtrip(self):
        restored = PolicyEngine.deserialize(PolicyEngine().serialize())
        assert restored.rule_count == 0

    def test_garbage_rejected(self):
        from repro.util.errors import MarshalError

        with pytest.raises(MarshalError):
            PolicyEngine.deserialize(b"not a policy at all")

    def test_serialization_stable(self):
        engine = PolicyEngine()
        engine.grant_owner("dd" * 32, 7)
        blob = engine.serialize()
        assert PolicyEngine.deserialize(blob).serialize() == blob
