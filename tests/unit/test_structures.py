"""Unit tests for TPM wire structures: key blobs, sealed blobs, quote info."""

import pytest

from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import generate_keypair
from repro.tpm.constants import (
    TPM_KEY_SIGNING,
    TPM_KEY_STORAGE,
    TPM_SS_RSASSAPKCS1v15_SHA1,
)
from repro.tpm.pcr import PcrSelection
from repro.tpm.structures import (
    SealedBlob,
    SealedPayload,
    TpmKeyBlob,
    TpmPcrInfo,
    make_quote_info,
)
from repro.util.bytesio import ByteReader
from repro.util.errors import MarshalError, TpmError


@pytest.fixture(scope="module")
def parent():
    return generate_keypair(512, RandomSource(b"parent"))


@pytest.fixture(scope="module")
def child():
    return generate_keypair(512, RandomSource(b"child"))


@pytest.fixture
def wrapped(parent, child, rng):
    return TpmKeyBlob.wrap(
        parent=parent,
        keypair=child,
        usage=TPM_KEY_SIGNING,
        usage_auth=b"U" * 20,
        migration_auth=b"M" * 20,
        rng=rng,
    )


class TestKeyBlob:
    def test_wrap_unwrap_roundtrip(self, parent, child, wrapped):
        portion = wrapped.unwrap(parent)
        assert portion.keypair.public.n == child.public.n
        assert portion.usage_auth == b"U" * 20
        assert portion.migration_auth == b"M" * 20

    def test_wrong_parent_cannot_unwrap(self, wrapped):
        imposter = generate_keypair(512, RandomSource(b"imposter"))
        with pytest.raises(TpmError):
            wrapped.unwrap(imposter)

    def test_serialize_roundtrip(self, parent, wrapped):
        restored = TpmKeyBlob.deserialize(wrapped.serialize())
        assert restored.usage == wrapped.usage
        assert restored.public.n == wrapped.public.n
        assert restored.unwrap(parent).usage_auth == b"U" * 20

    def test_pcr_info_survives_serialization(self, parent, child, rng):
        info = TpmPcrInfo(
            selection=PcrSelection([0, 5]), digest_at_release=b"\x0d" * 20
        )
        blob = TpmKeyBlob.wrap(
            parent=parent, keypair=child, usage=TPM_KEY_SIGNING,
            usage_auth=b"U" * 20, migration_auth=b"M" * 20, rng=rng,
            pcr_info=info,
        )
        restored = TpmKeyBlob.deserialize(blob.serialize())
        assert restored.pcr_info.selection == info.selection
        assert restored.pcr_info.digest_at_release == info.digest_at_release

    def test_unknown_usage_rejected(self, parent, child, rng):
        with pytest.raises(TpmError):
            TpmKeyBlob.wrap(
                parent=parent, keypair=child, usage=0x9999,
                usage_auth=b"U" * 20, migration_auth=b"M" * 20, rng=rng,
            )

    def test_default_scheme_by_usage(self, parent, child, rng):
        signing = TpmKeyBlob.wrap(
            parent=parent, keypair=child, usage=TPM_KEY_SIGNING,
            usage_auth=b"U" * 20, migration_auth=b"M" * 20, rng=rng,
        )
        assert signing.scheme == TPM_SS_RSASSAPKCS1v15_SHA1

    def test_garbage_rejected(self):
        with pytest.raises(MarshalError):
            TpmKeyBlob.deserialize(b"not a key blob at all")

    def test_tampered_private_portion_detected(self, parent, wrapped):
        blob = bytearray(wrapped.serialize())
        blob[-10] ^= 0xFF  # inside enc_private
        with pytest.raises((TpmError, MarshalError)):
            TpmKeyBlob.deserialize(bytes(blob)).unwrap(parent)


class TestSealedBlob:
    def test_serialize_roundtrip(self, rng):
        from repro.crypto.symmetric import SymmetricKey

        key = SymmetricKey.generate(rng)
        payload = SealedPayload(auth=b"A" * 20, data=b"sealed-data")
        enc = key.encrypt(payload.serialize(), rng)
        blob = SealedBlob(pcr_info=None, enc_payload=enc)
        restored = SealedBlob.deserialize(blob.serialize())
        recovered = SealedPayload.deserialize(key.decrypt(restored.enc_payload))
        assert recovered.data == b"sealed-data"
        assert recovered.auth == b"A" * 20

    def test_pcr_info_roundtrip(self, rng):
        from repro.crypto.symmetric import SymmetricKey

        key = SymmetricKey.generate(rng)
        enc = key.encrypt(SealedPayload(auth=b"A" * 20, data=b"d").serialize(), rng)
        info = TpmPcrInfo(selection=PcrSelection([8]), digest_at_release=b"\x01" * 20)
        blob = SealedBlob(pcr_info=info, enc_payload=enc)
        restored = SealedBlob.deserialize(blob.serialize())
        assert restored.pcr_info.selection == PcrSelection([8])

    def test_not_a_seal_rejected(self):
        with pytest.raises(MarshalError):
            SealedBlob.deserialize(b"XXXX" + b"\x00" * 40)


class TestQuoteInfo:
    def test_layout(self):
        info = make_quote_info(b"\x01" * 20, b"\x02" * 20)
        r = ByteReader(info)
        assert r.raw(4) == bytes((1, 1, 0, 0))
        assert r.raw(4) == b"QUOT"
        assert r.raw(20) == b"\x01" * 20
        assert r.raw(20) == b"\x02" * 20
        r.expect_end()

    def test_rejects_bad_sizes(self):
        with pytest.raises(MarshalError):
            make_quote_info(b"short", b"\x02" * 20)
        with pytest.raises(MarshalError):
            make_quote_info(b"\x01" * 20, b"short")


class TestPcrInfo:
    def test_bad_digest_rejected(self):
        with pytest.raises(MarshalError):
            TpmPcrInfo(selection=PcrSelection([0]), digest_at_release=b"xy")
