"""Unit tests for the audit log, reference monitor and memory protector."""

import pytest

from repro.core.audit import AuditLog
from repro.core.config import AccessControlConfig
from repro.core.identity import IdentityRegistry
from repro.core.monitor import AccessControlMonitor, BaselineMonitor
from repro.core.policy import PolicyEngine
from repro.core.protection import MemoryProtector
from repro.crypto.random_source import RandomSource
from repro.tpm import marshal
from repro.tpm.constants import TPM_ORD_Extend, TPM_ORD_OwnerClear, TPM_ORD_PcrRead
from repro.xen.hypervisor import Xen
from repro.xen.memory import MemoryRegion


@pytest.fixture
def xen():
    return Xen(RandomSource(b"monitor-test"))


@pytest.fixture
def plumbing(xen):
    identities = IdentityRegistry()
    policy = PolicyEngine()
    audit = AuditLog()
    monitor = AccessControlMonitor(identities, policy, audit)
    return identities, policy, audit, monitor


def _extend_wire() -> bytes:
    from repro.util.bytesio import ByteWriter

    return marshal.build_command(
        TPM_ORD_Extend, ByteWriter().u32(0).raw(b"\x01" * 20).getvalue()
    )


class TestAuditLog:
    def test_append_and_query(self):
        log = AuditLog()
        log.append("subj", 1, "TPM_Extend", True, "rule 1")
        log.append("subj", 1, "TPM_OwnerClear", False, "no rule")
        log.append("other", 2, "TPM_PCRRead", True, "rule 2")
        assert len(log) == 3
        assert len(log.denials()) == 1
        assert len(log.for_subject("subj")) == 2
        assert len(log.for_instance(2)) == 1
        assert [r.operation for r in log.tail(2)] == ["TPM_OwnerClear", "TPM_PCRRead"]

    def test_chain_verifies_when_untouched(self):
        log = AuditLog()
        for i in range(10):
            log.append(f"s{i}", i, "op", True, "r")
        assert log.verify_chain()

    def test_tamper_breaks_chain(self):
        log = AuditLog()
        for i in range(5):
            log.append(f"s{i}", i, "op", True, "r")
        # In-place edit of a past record.
        records = log._records
        import dataclasses

        records[2] = dataclasses.replace(records[2], reason="edited")
        assert not log.verify_chain()

    def test_truncation_breaks_chain(self):
        log = AuditLog()
        for i in range(5):
            log.append(f"s{i}", i, "op", True, "r")
        log._records.pop()
        assert not log.verify_chain()

    def test_records_carry_virtual_timestamps(self, timing_context):
        log = AuditLog()
        first = log.append("s", 1, "op", True, "r")
        timing_context.clock.advance(500)
        second = log.append("s", 1, "op", True, "r")
        assert second.timestamp_us > first.timestamp_us


class TestBaselineMonitor:
    def test_allows_everything_for_free(self, xen, timing_context):
        monitor = BaselineMonitor()
        guest = xen.create_domain("g", b"k")
        before = timing_context.clock.now_us
        verdict = monitor.authorize(guest, 1, None, _extend_wire())
        assert verdict.allowed
        assert timing_context.clock.now_us == before  # zero cost


class TestAccessControlMonitor:
    def test_allows_bound_owner(self, xen, plumbing):
        identities, policy, audit, monitor = plumbing
        guest = xen.create_domain("g", b"k")
        identity = identities.register(guest)
        monitor.on_instance_created(1, identity.hex)
        verdict = monitor.authorize(guest, 1, identity.hex, _extend_wire())
        assert verdict.allowed
        assert verdict.subject == identity.hex
        assert len(audit) == 1 and audit.records()[0].allowed

    def test_denies_wrong_binding(self, xen, plumbing):
        identities, policy, audit, monitor = plumbing
        attacker = xen.create_domain("attacker", b"evil")
        victim = xen.create_domain("victim", b"good")
        att_id = identities.register(attacker)
        vic_id = identities.register(victim)
        monitor.on_instance_created(1, vic_id.hex)
        verdict = monitor.authorize(attacker, 1, vic_id.hex, _extend_wire())
        assert not verdict.allowed
        assert "bound to identity" in verdict.reason
        assert monitor.denials == 1
        assert len(audit.denials()) == 1

    def test_denies_unmeasured_caller(self, xen, plumbing):
        _identities, _policy, _audit, monitor = plumbing
        guest = xen.create_domain("g", b"k")  # never registered
        verdict = monitor.authorize(guest, 1, "aa" * 32, _extend_wire())
        assert not verdict.allowed

    def test_denies_unauthorized_class(self, xen, plumbing):
        identities, policy, audit, monitor = plumbing
        guest = xen.create_domain("g", b"k")
        identity = identities.register(guest)
        policy.add_rule(identity.hex, 1, __import__(
            "repro.core.policy", fromlist=["CommandClass"]
        ).CommandClass.READ)
        read_wire = marshal.build_command(TPM_ORD_PcrRead, b"\x00\x00\x00\x00")
        clear_wire = marshal.build_command(TPM_ORD_OwnerClear, b"")
        assert monitor.authorize(guest, 1, identity.hex, read_wire).allowed
        assert not monitor.authorize(guest, 1, identity.hex, clear_wire).allowed

    def test_malformed_wire_denied(self, xen, plumbing):
        identities, _policy, _audit, monitor = plumbing
        guest = xen.create_domain("g", b"k")
        identities.register(guest)
        verdict = monitor.authorize(guest, 1, None, b"\xff\xff")
        assert not verdict.allowed
        assert "unparseable" in verdict.reason

    def test_instance_destruction_revokes_rules(self, xen, plumbing):
        identities, policy, _audit, monitor = plumbing
        guest = xen.create_domain("g", b"k")
        identity = identities.register(guest)
        monitor.on_instance_created(9, identity.hex)
        assert policy.rule_count == 6
        monitor.on_instance_destroyed(9)
        assert policy.rule_count == 0

    def test_audit_disabled_config(self, xen):
        identities = IdentityRegistry()
        audit = AuditLog()
        monitor = AccessControlMonitor(
            identities, PolicyEngine(), audit,
            AccessControlConfig(audit=False, policy_check=False),
        )
        guest = xen.create_domain("g", b"k")
        identities.register(guest)
        monitor.authorize(guest, 1, None, _extend_wire())
        assert len(audit) == 0


class TestMemoryProtector:
    def test_protect_and_unprotect(self, xen):
        protector = MemoryProtector(xen.memory, enabled=True)
        region = MemoryRegion(xen.memory, 0, xen.memory.allocate(0, 2))
        count = protector.protect_region("tag", region)
        assert count == 2
        assert all(protector.is_protected(f) for f in region.frames)
        assert protector.unprotect("tag") == 2
        assert not any(protector.is_protected(f) for f in region.frames)

    def test_disabled_protector_is_noop(self, xen):
        protector = MemoryProtector(xen.memory, enabled=False)
        region = MemoryRegion(xen.memory, 0, xen.memory.allocate(0, 2))
        assert protector.protect_region("tag", region) == 0
        assert not any(xen.memory.page(f).protected for f in region.frames)

    def test_unprotect_tolerates_freed_frames(self, xen):
        protector = MemoryProtector(xen.memory, enabled=True)
        region = MemoryRegion(xen.memory, 0, xen.memory.allocate(0, 1))
        protector.protect_region("tag", region)
        xen.memory.free(region.frames)
        protector.unprotect("tag")  # must not raise

    def test_protected_frames_listing(self, xen):
        protector = MemoryProtector(xen.memory, enabled=True)
        r1 = MemoryRegion(xen.memory, 0, xen.memory.allocate(0, 1))
        r2 = MemoryRegion(xen.memory, 0, xen.memory.allocate(0, 1))
        protector.protect_region("a", r1)
        protector.protect_region("b", r2)
        assert protector.protected_frames() == sorted(r1.frames + r2.frames)
