"""Unit tests for the observability layer (spans, counters, sinks) and the
timing-context binding rules it shares with the latency recorder."""

from __future__ import annotations

import json

import pytest

from repro.harness.builder import fresh_timing_context
from repro.metrics.recorder import LatencyRecorder
from repro.obs import (
    NULL_SPAN,
    CounterRegistry,
    CountingSink,
    InMemorySink,
    JsonlSink,
    Tracer,
    current_registry,
    current_tracer,
    format_span_tree,
    load_jsonl,
    registry_scope,
    span,
    span_event,
    tracer_scope,
    validate_span_tree,
    validate_tree_dict,
)
from repro.sim.timing import charge, get_context
from repro.util.errors import ReproError


class TestSpans:
    def test_disabled_hook_returns_shared_null_span(self):
        assert current_tracer() is None
        s = span("anything", key="value")
        assert s is NULL_SPAN
        with s as inner:
            inner.set("x", 1)
            inner.add_event("ignored")
        span_event("also-ignored")  # must not raise with no tracer

    def test_span_carries_both_timebases(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("work") as s:
                charge("tpm.cmd.base")
        assert s.closed
        assert s.duration_virtual_us > 0
        assert s.duration_wall_ns > 0

    def test_nesting_follows_the_stack(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root"):
                with span("child-a"):
                    charge("tpm.cmd.base")
                with span("child-b") as b:
                    with span("grandchild"):
                        pass
                span_event("note", detail=7)
        (root,) = tracer.sink.roots
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in b.children] == ["grandchild"]
        assert root.events[0]["name"] == "note"
        validate_span_tree(root)
        assert tracer.open_spans == 0

    def test_mismatched_close_raises(self):
        tracer = Tracer(InMemorySink())
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        with pytest.raises(ReproError, match="mismatched span nesting"):
            tracer._finish(outer)

    def test_span_crossing_context_reset_raises(self):
        """A span left open across fresh_timing_context() would report a
        virtual interval mixing two epochs — it must refuse instead."""
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            s = tracer.start_span("stale")
            fresh_timing_context()
            with pytest.raises(ReproError, match="timing-context reset"):
                s.__exit__(None, None, None)

    def test_validate_rejects_unclosed_and_nonnested(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root") as root:
                with span("child"):
                    charge("tpm.cmd.base")
        # Tamper: pull the child outside its parent's interval.
        root.children[0].end_virtual_us = root.end_virtual_us + 1.0
        with pytest.raises(ReproError, match="not nested"):
            validate_span_tree(root)
        root.children[0].end_virtual_us = None
        with pytest.raises(ReproError, match="never closed"):
            validate_span_tree(root)

    def test_find_and_walk(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("a"):
                with span("b"):
                    pass
                with span("b"):
                    pass
        (root,) = tracer.sink.roots
        assert len(root.find("b")) == 2
        assert [s.name for s in root.walk()] == ["a", "b", "b"]


class TestCounters:
    def test_disabled_hooks_are_noops(self):
        from repro.obs import counters as obs_counters

        assert current_registry() is None
        obs_counters.inc("nothing")
        obs_counters.set_gauge("nothing", 1.0)

    def test_inc_value_total_and_labels(self):
        reg = CounterRegistry()
        reg.inc("ac.decisions", outcome="allow")
        reg.inc("ac.decisions", outcome="allow")
        reg.inc("ac.decisions", outcome="deny")
        assert reg.value("ac.decisions", outcome="allow") == 2
        assert reg.total("ac.decisions") == 3
        assert reg.value("missing") == 0

    def test_negative_increment_rejected(self):
        reg = CounterRegistry()
        with pytest.raises(ReproError, match="cannot decrease"):
            reg.inc("x", -1)

    def test_exposition_is_sorted_and_stable(self):
        reg = CounterRegistry()
        reg.inc("b.counter", cls="z")
        reg.inc("b.counter", cls="a")
        reg.inc("a.counter")
        reg.set_gauge("c.gauge", 2.5)
        assert reg.exposition() == (
            "a.counter 1\n"
            'b.counter{cls="a"} 1\n'
            'b.counter{cls="z"} 1\n'
            "c.gauge 2.5\n"
        )

    def test_scope_installs_and_restores(self):
        from repro.obs import counters as obs_counters

        reg = CounterRegistry()
        with registry_scope(reg):
            assert current_registry() is reg
            obs_counters.inc("seen")
        assert current_registry() is None
        assert reg.value("seen") == 1


class TestContextBinding:
    """The shared epoch rule: observation state binds to the timing
    context it first records under, and a cross-context write raises."""

    def test_registry_rejects_cross_context_writes(self):
        reg = CounterRegistry()
        reg.inc("x")
        fresh_timing_context()
        with pytest.raises(ReproError, match="earlier timing context"):
            reg.inc("x")

    def test_registry_reset_rebinds(self):
        reg = CounterRegistry()
        reg.inc("x")
        fresh_timing_context()
        reg.reset()
        reg.inc("x")
        assert reg.value("x") == 1

    def test_recorder_rejects_cross_context_samples(self):
        """Regression: samples recorded across a sim-context reset used to
        silently mix epochs into one summary."""
        recorder = LatencyRecorder()
        recorder.record("op", 10.0)
        fresh_timing_context()
        with pytest.raises(ReproError, match="earlier timing context"):
            recorder.record("op", 1.0)
        # And via the measuring context manager too.
        with pytest.raises(ReproError, match="earlier timing context"):
            with recorder.measure("op"):
                pass

    def test_recorder_clear_rebinds(self):
        recorder = LatencyRecorder()
        recorder.record("op", 10.0)
        fresh_timing_context()
        recorder.clear()
        recorder.record("op", 2.0)
        assert recorder.samples("op") == [2.0]

    def test_fresh_recorder_per_context_is_unaffected(self):
        recorder = LatencyRecorder()
        recorder.record("op", 1.0)
        fresh_timing_context()
        other = LatencyRecorder()
        other.record("op", 2.0)  # binds lazily to the current context
        assert other.samples("op") == [2.0]


class TestSinks:
    def _tree(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root", domid=1):
                with span("child"):
                    charge("tpm.cmd.base")
                span_event("fault", kind="ring-stall")
        return tracer

    def test_in_memory_sink_validate_counts_spans(self):
        tracer = self._tree()
        assert tracer.sink.validate() == 2
        assert len(tracer.sink) == 1
        assert len(tracer.sink.spans_named("child")) == 1

    def test_counting_sink_counts_without_retaining(self):
        sink = CountingSink()
        tracer = Tracer(sink)
        with tracer_scope(tracer):
            with span("root"):
                with span("child"):
                    pass
        assert sink.roots == 1
        assert sink.spans == 2

    def test_jsonl_round_trip_and_dict_oracle(self, tmp_path):
        out = tmp_path / "t.jsonl"
        with out.open("w") as fh:
            tracer = Tracer(JsonlSink(fh))
            with tracer_scope(tracer):
                with span("root"):
                    with span("child"):
                        charge("tpm.cmd.base")
        (tree,) = load_jsonl(out.read_text())
        assert validate_tree_dict(tree) == 2
        broken = json.loads(json.dumps(tree))
        broken["children"][0]["virtual_us"][1] = (
            tree["virtual_us"][1] + 99.0
        )
        with pytest.raises(ReproError, match="not nested"):
            validate_tree_dict(broken)

    def test_format_span_tree_is_renderable(self):
        tracer = self._tree()
        lines = format_span_tree(tracer.sink.roots[0])
        text = "\n".join(lines)
        assert "root" in text and "child" in text
        assert "! fault" in text
        assert "domid=1" in text
