"""Unit tests for the observability layer (spans, counters, sinks) and the
timing-context binding rules it shares with the latency recorder."""

from __future__ import annotations

import json

import pytest

from repro.harness.builder import fresh_timing_context
from repro.metrics.recorder import LatencyRecorder
from repro.obs import (
    NULL_SPAN,
    CounterRegistry,
    CountingSink,
    InMemorySink,
    JsonlSink,
    Tracer,
    current_registry,
    current_tracer,
    format_span_tree,
    load_jsonl,
    registry_scope,
    span,
    span_event,
    tracer_scope,
    validate_span_tree,
    validate_tree_dict,
)
from repro.sim.timing import charge, get_context
from repro.util.errors import ReproError


class TestSpans:
    def test_disabled_hook_returns_shared_null_span(self):
        assert current_tracer() is None
        s = span("anything", key="value")
        assert s is NULL_SPAN
        with s as inner:
            inner.set("x", 1)
            inner.add_event("ignored")
        span_event("also-ignored")  # must not raise with no tracer

    def test_span_carries_both_timebases(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("work") as s:
                charge("tpm.cmd.base")
        assert s.closed
        assert s.duration_virtual_us > 0
        assert s.duration_wall_ns > 0

    def test_nesting_follows_the_stack(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root"):
                with span("child-a"):
                    charge("tpm.cmd.base")
                with span("child-b") as b:
                    with span("grandchild"):
                        pass
                span_event("note", detail=7)
        (root,) = tracer.sink.roots
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in b.children] == ["grandchild"]
        assert root.events[0]["name"] == "note"
        validate_span_tree(root)
        assert tracer.open_spans == 0

    def test_mismatched_close_raises(self):
        tracer = Tracer(InMemorySink())
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        with pytest.raises(ReproError, match="mismatched span nesting"):
            tracer._finish(outer)

    def test_span_crossing_context_reset_raises(self):
        """A span left open across fresh_timing_context() would report a
        virtual interval mixing two epochs — it must refuse instead."""
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            s = tracer.start_span("stale")
            fresh_timing_context()
            with pytest.raises(ReproError, match="timing-context reset"):
                s.__exit__(None, None, None)

    def test_validate_rejects_unclosed_and_nonnested(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root") as root:
                with span("child"):
                    charge("tpm.cmd.base")
        # Tamper: pull the child outside its parent's interval.
        root.children[0].end_virtual_us = root.end_virtual_us + 1.0
        with pytest.raises(ReproError, match="not nested"):
            validate_span_tree(root)
        root.children[0].end_virtual_us = None
        with pytest.raises(ReproError, match="never closed"):
            validate_span_tree(root)

    def test_find_and_walk(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("a"):
                with span("b"):
                    pass
                with span("b"):
                    pass
        (root,) = tracer.sink.roots
        assert len(root.find("b")) == 2
        assert [s.name for s in root.walk()] == ["a", "b", "b"]


class TestCounters:
    def test_disabled_hooks_are_noops(self):
        from repro.obs import counters as obs_counters

        assert current_registry() is None
        obs_counters.inc("nothing")
        obs_counters.set_gauge("nothing", 1.0)

    def test_inc_value_total_and_labels(self):
        reg = CounterRegistry()
        reg.inc("ac.decisions", outcome="allow")
        reg.inc("ac.decisions", outcome="allow")
        reg.inc("ac.decisions", outcome="deny")
        assert reg.value("ac.decisions", outcome="allow") == 2
        assert reg.total("ac.decisions") == 3
        assert reg.value("missing") == 0

    def test_negative_increment_rejected(self):
        reg = CounterRegistry()
        with pytest.raises(ReproError, match="cannot decrease"):
            reg.inc("x", -1)

    def test_exposition_is_sorted_and_stable(self):
        reg = CounterRegistry()
        reg.inc("b.counter", cls="z")
        reg.inc("b.counter", cls="a")
        reg.inc("a.counter")
        reg.set_gauge("c.gauge", 2.5)
        assert reg.exposition() == (
            "a.counter 1\n"
            'b.counter{cls="a"} 1\n'
            'b.counter{cls="z"} 1\n'
            "c.gauge 2.5\n"
        )

    def test_scope_installs_and_restores(self):
        from repro.obs import counters as obs_counters

        reg = CounterRegistry()
        with registry_scope(reg):
            assert current_registry() is reg
            obs_counters.inc("seen")
        assert current_registry() is None
        assert reg.value("seen") == 1


class TestContextBinding:
    """The shared epoch rule: observation state binds to the timing
    context it first records under, and a cross-context write raises."""

    def test_registry_rejects_cross_context_writes(self):
        reg = CounterRegistry()
        reg.inc("x")
        fresh_timing_context()
        with pytest.raises(ReproError, match="earlier timing context"):
            reg.inc("x")

    def test_registry_reset_rebinds(self):
        reg = CounterRegistry()
        reg.inc("x")
        fresh_timing_context()
        reg.reset()
        reg.inc("x")
        assert reg.value("x") == 1

    def test_recorder_rejects_cross_context_samples(self):
        """Regression: samples recorded across a sim-context reset used to
        silently mix epochs into one summary."""
        recorder = LatencyRecorder()
        recorder.record("op", 10.0)
        fresh_timing_context()
        with pytest.raises(ReproError, match="earlier timing context"):
            recorder.record("op", 1.0)
        # And via the measuring context manager too.
        with pytest.raises(ReproError, match="earlier timing context"):
            with recorder.measure("op"):
                pass

    def test_recorder_clear_rebinds(self):
        recorder = LatencyRecorder()
        recorder.record("op", 10.0)
        fresh_timing_context()
        recorder.clear()
        recorder.record("op", 2.0)
        assert recorder.samples("op") == [2.0]

    def test_fresh_recorder_per_context_is_unaffected(self):
        recorder = LatencyRecorder()
        recorder.record("op", 1.0)
        fresh_timing_context()
        other = LatencyRecorder()
        other.record("op", 2.0)  # binds lazily to the current context
        assert other.samples("op") == [2.0]


class TestSinks:
    def _tree(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root", domid=1):
                with span("child"):
                    charge("tpm.cmd.base")
                span_event("fault", kind="ring-stall")
        return tracer

    def test_in_memory_sink_validate_counts_spans(self):
        tracer = self._tree()
        assert tracer.sink.validate() == 2
        assert len(tracer.sink) == 1
        assert len(tracer.sink.spans_named("child")) == 1

    def test_counting_sink_counts_without_retaining(self):
        sink = CountingSink()
        tracer = Tracer(sink)
        with tracer_scope(tracer):
            with span("root"):
                with span("child"):
                    pass
        assert sink.roots == 1
        assert sink.spans == 2

    def test_jsonl_round_trip_and_dict_oracle(self, tmp_path):
        out = tmp_path / "t.jsonl"
        with out.open("w") as fh:
            sink = JsonlSink(fh)
            tracer = Tracer(sink)
            with tracer_scope(tracer):
                with span("root"):
                    with span("child"):
                        charge("tpm.cmd.base")
            sink.flush()
        (tree,) = load_jsonl(out.read_text())
        assert validate_tree_dict(tree) == 2
        broken = json.loads(json.dumps(tree))
        broken["children"][0]["virtual_us"][1] = (
            tree["virtual_us"][1] + 99.0
        )
        with pytest.raises(ReproError, match="not nested"):
            validate_tree_dict(broken)

    def test_wall_capture_is_sink_declared(self, tmp_path):
        # wants_wall=False sinks (JSONL, counting) skip both host-clock
        # reads and their artifacts carry no wall_ns — the JSONL trace is
        # then a pure function of the seed.
        out = tmp_path / "t.jsonl"
        with out.open("w") as fh:
            sink = JsonlSink(fh)
            tracer = Tracer(sink)
            with tracer_scope(tracer):
                with span("root") as root_span:
                    with span("child"):
                        charge("tpm.cmd.base")
            assert root_span.start_wall_ns == 0
            assert root_span.end_wall_ns == 0
            sink.flush()
        (tree,) = load_jsonl(out.read_text())
        assert "wall_ns" not in tree
        assert "wall_ns" not in tree["children"][0]
        assert validate_tree_dict(tree) == 2
        # wants_wall=True sinks (in-memory, self-time) still capture it.
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root"):
                pass
        (kept,) = tracer.sink.roots
        assert kept.duration_wall_ns > 0
        assert "wall_ns" in kept.to_dict()

    def test_format_span_tree_is_renderable(self):
        tracer = self._tree()
        lines = format_span_tree(tracer.sink.roots[0])
        text = "\n".join(lines)
        assert "root" in text and "child" in text
        assert "! fault" in text
        assert "domid=1" in text

    def test_self_time_sink_attributes_own_cost(self):
        from repro.obs import SelfTimeSink

        sink = SelfTimeSink()
        tracer = Tracer(sink)
        with tracer_scope(tracer):
            for _ in range(3):
                with span("outer"):
                    with span("inner"):
                        pass
        assert sink.roots == 3
        rows = {name: (count, own, total)
                for name, count, own, total in sink.top(10)}
        assert rows["outer"][0] == rows["inner"][0] == 3
        # A parent's self time excludes its children's wall time.
        assert rows["outer"][1] <= rows["outer"][2]
        assert rows["inner"][1] == rows["inner"][2]
        table = sink.format_top(2)
        assert "self-us" in table[0]
        assert len(table) == 3  # header + two sites
        # Spans were recycled, not retained: the pool holds the tree.
        assert tracer._pool


class TestSampling:
    """Deterministic head sampling: 1-in-N trees, replay-identical."""

    def _run(self, rate, seed=0, roots=20):
        tracer = Tracer(InMemorySink(), sample_rate=rate, sample_seed=seed)
        with tracer_scope(tracer):
            for i in range(roots):
                with span("root", index=i):
                    with span("child"):
                        pass
        return tracer

    def test_rate_one_records_every_tree(self):
        tracer = self._run(rate=1)
        assert tracer.roots_seen == 20
        assert tracer.roots_emitted == 20
        assert tracer.roots_skipped == 0

    def test_keeps_one_in_n_from_the_seed_residue(self):
        tracer = self._run(rate=4)
        assert tracer.roots_seen == 20
        assert tracer.roots_emitted == 5
        assert tracer.roots_skipped == 15
        kept = [root.attrs["index"] for root in tracer.sink.roots]
        assert kept == [0, 4, 8, 12, 16]

    def test_sample_seed_rotates_the_residue_class(self):
        tracer = self._run(rate=4, seed=1)
        kept = [root.attrs["index"] for root in tracer.sink.roots]
        assert kept == [1, 5, 9, 13, 17]

    def test_schedule_is_replay_identical(self):
        """Same seed, same workload — the very same trees are kept: the
        schedule is a pure function of (root index, seed), no RNG."""
        for rate in (1, 4, 64):
            first = self._run(rate=rate, roots=100)
            second = self._run(rate=rate, roots=100)
            assert (
                [r.attrs["index"] for r in first.sink.roots]
                == [r.attrs["index"] for r in second.sink.roots]
            )

    def test_suppressed_root_hides_the_tracer(self):
        """Inside a sampled-out root the ambient slot reads None, so every
        nested guarded site takes its free path; the tracer is reinstalled
        when the skip scope exits."""
        tracer = Tracer(InMemorySink(), sample_rate=2, sample_seed=1)
        with tracer_scope(tracer):
            with span("skipped"):  # index 0: sampled out
                assert current_tracer() is None
                assert span("nested") is NULL_SPAN
            assert current_tracer() is tracer
            with span("kept"):  # index 1: recorded
                assert current_tracer() is tracer
        assert tracer.roots_emitted == 1
        assert tracer.sink.roots[0].name == "kept"
        assert tracer.open_spans == 0

    def test_direct_start_span_during_skip_is_null(self):
        """Code holding a direct tracer reference (not the ambient slot)
        still gets a no-op span while a root is suppressed."""
        tracer = Tracer(InMemorySink(), sample_rate=2, sample_seed=1)
        with tracer_scope(tracer):
            with tracer.start_span("skipped"):
                assert tracer.start_span("direct") is NULL_SPAN
        assert tracer.roots_emitted == 0
        assert tracer.roots_skipped == 1

    def test_counters_stay_exact_under_sampling(self):
        from repro.obs import counters as obs_counters

        handle = obs_counters.counter("sampling.events")
        tracer = Tracer(InMemorySink(), sample_rate=8)
        reg = CounterRegistry()
        with tracer_scope(tracer), registry_scope(reg):
            for i in range(32):
                with span("root", index=i):
                    handle.inc()
                    obs_counters.inc("sampling.named")
        assert tracer.roots_emitted == 4
        assert reg.value("sampling.events") == 32  # every tree, kept or not
        assert reg.value("sampling.named") == 32


class TestSpanPooling:
    """Non-retaining sinks recycle emitted spans; retaining sinks don't."""

    def test_pool_reuses_span_objects(self):
        tracer = Tracer(CountingSink())
        with tracer_scope(tracer):
            with span("root"):
                with span("child"):
                    pass
            assert len(tracer._pool) == 2
            recycled = tracer._pool[-1]
            reused = tracer.start_span("again")
            assert reused is recycled
            assert reused.children == [] and reused.events == []
            assert reused.attrs is None
            reused.__exit__(None, None, None)
        assert tracer.sink.roots == 2

    def test_retaining_sink_never_recycles(self):
        tracer = Tracer(InMemorySink())
        with tracer_scope(tracer):
            with span("root"):
                pass
        assert tracer._pool == []
        assert tracer.sink.roots[0].name == "root"

    def test_pool_is_capped(self):
        from repro.obs import trace as obs_trace

        tracer = Tracer(CountingSink())
        with tracer_scope(tracer):
            for _ in range(3):
                root = tracer.start_span("wide")
                for _ in range(600):
                    tracer.start_span("leaf").__exit__(None, None, None)
                root.__exit__(None, None, None)
        assert len(tracer._pool) <= obs_trace._POOL_CAP


class TestCounterHandles:
    """Pre-resolved handles share cells with the named path and follow
    registry installation and timing-context epochs exactly."""

    def test_handle_and_named_writes_share_one_cell(self):
        from repro.obs import counters as obs_counters

        handle = obs_counters.counter("handles.shared", cls="x")
        reg = CounterRegistry()
        with registry_scope(reg):
            handle.inc()
            reg.inc("handles.shared", cls="x")
            handle.add(3)
        assert reg.value("handles.shared", cls="x") == 5

    def test_handle_is_a_noop_without_a_registry(self):
        from repro.obs import counters as obs_counters

        assert current_registry() is None
        obs_counters.counter("handles.off").inc()  # must not raise

    def test_handle_follows_registry_swap(self):
        from repro.obs import counters as obs_counters

        handle = obs_counters.counter("handles.swap")
        first, second = CounterRegistry(), CounterRegistry()
        with registry_scope(first):
            handle.inc()
        with registry_scope(second):
            handle.inc(2)
        assert first.value("handles.swap") == 1
        assert second.value("handles.swap") == 2

    def test_handle_rebinds_after_reset(self):
        from repro.obs import counters as obs_counters

        handle = obs_counters.counter("handles.reset")
        reg = CounterRegistry()
        with registry_scope(reg):
            handle.inc()
            stale_cell = handle._cell
            fresh_timing_context()
            reg.reset()
            handle.inc()
            assert handle._cell is not stale_cell
            assert reg.value("handles.reset") == 1

    def test_handle_cross_context_write_raises(self):
        from repro.obs import counters as obs_counters

        handle = obs_counters.counter("handles.epoch")
        reg = CounterRegistry()
        with registry_scope(reg):
            handle.inc()
            fresh_timing_context()
            with pytest.raises(ReproError, match="earlier timing context"):
                handle.inc()

    def test_handle_negative_increment_rejected(self):
        from repro.obs import counters as obs_counters

        handle = obs_counters.counter("handles.negative")
        with registry_scope(CounterRegistry()):
            with pytest.raises(ReproError, match="cannot decrease"):
                handle.inc(-1)


class TestExpositionDeterminism:
    """Regression (satellite): exposition order is insertion-independent —
    ascending metric name then label tuple, handles and named merged."""

    def test_insertion_order_cannot_leak_into_exposition(self):
        from repro.obs import counters as obs_counters

        def fill(reg, order):
            with registry_scope(reg):
                for step in order:
                    step()
        h_ring = obs_counters.counter("ring.kicks")
        h_cls = obs_counters.counter("ac.commands", cls="read")
        ops = {
            "gauge": lambda: obs_counters.set_gauge("pool.depth", 3.0),
            "handle": h_ring.inc,
            "labeled": h_cls.inc,
            "named": lambda: obs_counters.inc("ac.commands", cls="measure"),
        }
        forward, backward = CounterRegistry(), CounterRegistry()
        fill(forward, [ops[k] for k in sorted(ops)])
        fill(backward, [ops[k] for k in sorted(ops, reverse=True)])
        assert forward.exposition() == backward.exposition()
        assert forward.exposition() == (
            'ac.commands{cls="measure"} 1\n'
            'ac.commands{cls="read"} 1\n'
            "pool.depth 3\n"
            "ring.kicks 1\n"
        )
