"""Unit tests for the static-analysis framework and every domain rule.

Each rule gets a fixture trio: a **positive** snippet that must fire, a
**suppressed** variant (pragma with reason) that must not, and an
**allowlisted** / negative variant the rule must leave alone.  The
framework tests cover the walker, the pragma grammar (same-line and
previous-line, mandatory reason, staleness) and the baseline diff.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Analyzer,
    ModuleSource,
    RULES,
    check_against_baseline,
    injected_module,
    load_baseline,
    render_baseline,
    render_json,
    render_text,
)
from repro.analysis.core import META_MALFORMED, META_UNUSED, Finding
from repro.analysis.rules.counter_registry import (
    COUNTER_NAMESPACES,
    collect_metric_literals,
)


def run_rule(rule_id: str, relpath: str, source: str):
    """One rule over one in-memory module (no suppression layer)."""
    return RULES[rule_id].check(ModuleSource(relpath, source))


def analyze_tree(tmp_path, files, rule_ids=None):
    """Full Analyzer run over a synthetic package tree."""
    root = tmp_path / "repro"
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return Analyzer(package_root=root, rule_ids=rule_ids).run()


# -- fail-closed ------------------------------------------------------------------


class TestFailClosed:
    def test_positive_silent_pass(self):
        findings = run_rule(
            "fail-closed",
            "repro/core/x.py",
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n",
        )
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "swallows" in findings[0].message

    def test_positive_rename_only(self):
        findings = run_rule(
            "fail-closed",
            "repro/vtpm/x.py",
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError as exc:\n"
            "        last = exc\n",
        )
        assert len(findings) == 1

    @pytest.mark.parametrize("body", ["raise", "return None", "handle()"])
    def test_negative_handler_acts(self, body):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            f"        {body}\n"
        )
        assert run_rule("fail-closed", "repro/cluster/x.py", src) == []

    def test_negative_handler_continue(self):
        src = (
            "def f():\n"
            "    for _ in range(1):\n"
            "        try:\n"
            "            g()\n"
            "        except ValueError:\n"
            "            continue\n"
        )
        assert run_rule("fail-closed", "repro/cluster/x.py", src) == []

    def test_out_of_scope_package_ignored(self):
        src = "try:\n    g()\nexcept ValueError:\n    pass\n"
        assert run_rule("fail-closed", "repro/metrics/x.py", src) == []
        assert run_rule("fail-closed", "repro/attacks/x.py", src) != []

    def test_suppressed_with_reason(self, tmp_path):
        result = analyze_tree(
            tmp_path,
            {
                "repro/core/x.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    # repro: allow[fail-closed] -- deliberate probe\n"
                    "    except ValueError:\n"
                    "        pass\n"
                )
            },
            rule_ids=["fail-closed"],
        )
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0][1].reason == "deliberate probe"


# -- determinism ------------------------------------------------------------------


class TestDeterminism:
    def test_positive_wall_read(self):
        findings = run_rule(
            "determinism",
            "repro/sim/x.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        assert len(findings) == 1
        assert "wall-clock read" in findings[0].message

    def test_positive_random_import(self):
        findings = run_rule(
            "determinism", "repro/util/x.py", "import random\n"
        )
        assert len(findings) == 1
        assert "random" in findings[0].message

    def test_positive_urandom_and_uuid4(self):
        src = (
            "import os, uuid\n"
            "def f():\n"
            "    return os.urandom(8), uuid.uuid4()\n"
        )
        assert len(run_rule("determinism", "repro/tpm/x.py", src)) == 2

    def test_positive_set_iteration(self):
        findings = run_rule(
            "determinism",
            "repro/xen/x.py",
            "def f(xs):\n    return [x for x in set(xs)]\n",
        )
        assert len(findings) == 1
        assert "set" in findings[0].message

    def test_negative_sorted_set(self):
        src = "def f(xs):\n    return [x for x in sorted(set(xs))]\n"
        assert run_rule("determinism", "repro/xen/x.py", src) == []

    def test_allowlisted_wall_capture_file(self):
        src = "import time\n\ndef f():\n    return time.perf_counter_ns()\n"
        assert run_rule("determinism", "repro/obs/trace.py", src) == []
        # same source outside the allowlist fires
        assert run_rule("determinism", "repro/obs/sinks.py", src) != []


# -- secret-flow ------------------------------------------------------------------


class TestSecretFlow:
    def test_positive_param_to_exception(self):
        findings = run_rule(
            "secret-flow",
            "repro/tpm/x.py",
            "def f(owner_auth):\n"
            "    raise ValueError(f'bad {owner_auth!r}')\n",
        )
        assert len(findings) == 1
        assert "exception message" in findings[0].message

    def test_positive_attr_to_log(self):
        findings = run_rule(
            "secret-flow",
            "repro/tpm/x.py",
            "def f(key):\n"
            "    log.info('auth=%s', key.usage_auth)\n",
        )
        assert len(findings) == 1
        assert "log" in findings[0].message

    def test_positive_secret_material_to_span(self):
        findings = run_rule(
            "secret-flow",
            "repro/vtpm/x.py",
            "def f(state, span):\n"
            "    span.set('secrets', state.secret_material())\n",
        )
        assert len(findings) == 1

    def test_positive_taint_through_rewrap(self):
        findings = run_rule(
            "secret-flow",
            "repro/tpm/x.py",
            "def f(key):\n"
            "    shown = key.usage_auth.hex()\n"
            "    print(shown)\n",
        )
        assert len(findings) == 1

    def test_negative_derived_value(self):
        # taint does not survive a non-wrapping call: an HMAC over the
        # secret is a derived value, not the secret
        src = (
            "def f(key):\n"
            "    mac = hmac_sha1(key.usage_auth, b'x')\n"
            "    raise ValueError(f'mac mismatch: {mac.hex()}')\n"
        )
        assert run_rule("secret-flow", "repro/tpm/x.py", src) == []

    def test_negative_untainted(self):
        src = "def f(count):\n    print(count)\n"
        assert run_rule("secret-flow", "repro/tpm/x.py", src) == []

    def test_suppressed(self, tmp_path):
        result = analyze_tree(
            tmp_path,
            {
                "repro/tpm/x.py": (
                    "def f(owner_auth):\n"
                    "    # repro: allow[secret-flow] -- test vector, not a real secret\n"
                    "    raise ValueError(f'bad {owner_auth!r}')\n"
                )
            },
            rule_ids=["secret-flow"],
        )
        assert result.findings == []
        assert len(result.suppressed) == 1


# -- audit-on-deny ----------------------------------------------------------------


class TestAuditOnDeny:
    SCOPE = "repro/resilience/admission.py"

    def test_positive_shed_without_emission(self):
        findings = run_rule(
            "audit-on-deny",
            self.SCOPE,
            "def shed(wire):\n    return build_response(0x9)\n",
        )
        assert len(findings) == 1
        assert "no audit append or counter" in findings[0].message

    def test_negative_shed_with_counter(self):
        src = (
            "def shed(self, wire):\n"
            "    inc('resilience.shed', reason='depth')\n"
            "    return build_response(0x9)\n"
        )
        assert run_rule("audit-on-deny", self.SCOPE, src) == []

    def test_negative_deny_with_audit(self):
        src = (
            "def deny(self, subject):\n"
            "    self.audit.append_buffered(subject, 0, 'op', False, 'r')\n"
            "    return AuthorizationResult(allowed=False, subject=subject)\n"
        )
        assert run_rule(
            "audit-on-deny", "repro/core/monitor.py", src
        ) == []

    def test_positive_breaker_transition(self):
        findings = run_rule(
            "audit-on-deny",
            "repro/resilience/breaker.py",
            "def _enter(self, state):\n"
            "    self.events.append((state, 0.0))\n",
        )
        assert len(findings) == 1

    def test_out_of_scope_file_ignored(self):
        src = "def shed(wire):\n    return build_response(0x9)\n"
        assert run_rule(
            "audit-on-deny", "repro/resilience/health.py", src
        ) == []


# -- counter-registry -------------------------------------------------------------


class TestCounterRegistry:
    def test_positive_typo_namespace(self):
        findings = run_rule(
            "counter-registry",
            "repro/vtpm/x.py",
            "def f():\n    inc('vtmp.hotplug.error')\n",
        )
        assert len(findings) == 1
        assert "undeclared namespace 'vtmp'" in findings[0].message

    def test_positive_bad_grammar(self):
        findings = run_rule(
            "counter-registry",
            "repro/vtpm/x.py",
            "def f():\n    counter('Vtpm.Errors')\n",
        )
        assert len(findings) == 1
        assert "grammar" in findings[0].message

    def test_positive_span_root(self):
        findings = run_rule(
            "counter-registry",
            "repro/vtpm/x.py",
            "def f(tracer):\n    tracer.start_span('weird.op')\n",
        )
        assert len(findings) == 1

    def test_negative_declared_names(self):
        src = (
            "def f(tracer):\n"
            "    inc('vtpm.hotplug.error', op='disconnect')\n"
            "    counter('ac.decisions', outcome='allow')\n"
            "    set_gauge('resilience.depth', 3)\n"
            "    tracer.start_span('manager.dispatch')\n"
        )
        assert run_rule("counter-registry", "repro/vtpm/x.py", src) == []

    def test_non_name_calls_ignored(self):
        # first args that are not string literals never trip the rule
        src = "def f(n):\n    inc(n)\n    slots.inc(3)\n"
        assert run_rule("counter-registry", "repro/tpm/x.py", src) == []

    def test_collect_metric_literals(self):
        module = ModuleSource(
            "repro/vtpm/x.py",
            "def f(tracer):\n"
            "    inc('vtpm.a')\n"
            "    counter('ac.b', cls='x')\n"
            "    tracer.start_span('authz')\n",
        )
        literals = collect_metric_literals([module])
        assert literals["counter"] == {"vtpm.a", "ac.b"}
        assert literals["span"] == {"authz"}


# -- virtual-time -----------------------------------------------------------------


class TestVirtualTime:
    FILE = "repro/obs/trace.py"

    def test_positive_ungated_read(self):
        findings = run_rule(
            "virtual-time",
            self.FILE,
            "import time\n"
            "def f(span):\n"
            "    span.start_wall_ns = time.perf_counter_ns()\n",
        )
        assert len(findings) == 1
        assert "ungated wall-clock read" in findings[0].message

    def test_negative_ifexp_gate(self):
        src = (
            "import time\n"
            "def f(span, wall):\n"
            "    span.start_wall_ns = time.perf_counter_ns() if wall else 0\n"
        )
        assert run_rule("virtual-time", self.FILE, src) == []

    def test_negative_if_stmt_gate_on_attr(self):
        src = (
            "import time\n"
            "def f(self, span):\n"
            "    if self.wants_wall:\n"
            "        span.end_wall_ns = time.perf_counter_ns()\n"
        )
        assert run_rule("virtual-time", self.FILE, src) == []

    def test_unrelated_gate_does_not_count(self):
        src = (
            "import time\n"
            "def f(span, enabled):\n"
            "    if enabled:\n"
            "        span.end_wall_ns = time.perf_counter_ns()\n"
        )
        assert len(run_rule("virtual-time", self.FILE, src)) == 1

    def test_out_of_scope_file_ignored(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert run_rule("virtual-time", "repro/sim/clock.py", src) == []


# -- framework: pragmas, walker, baseline ----------------------------------------


class TestPragmas:
    BAD = (
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except ValueError:\n"
        "        pass\n"
    )

    def test_same_line_pragma(self, tmp_path):
        src = self.BAD.replace(
            "except ValueError:",
            "except ValueError:  # repro: allow[fail-closed] -- why not",
        )
        result = analyze_tree(
            tmp_path, {"repro/core/x.py": src}, rule_ids=["fail-closed"]
        )
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_pragma_without_reason_is_reported(self, tmp_path):
        src = self.BAD.replace(
            "except ValueError:",
            "except ValueError:  # repro: allow[fail-closed]",
        )
        result = analyze_tree(
            tmp_path, {"repro/core/x.py": src}, rule_ids=["fail-closed"]
        )
        assert [f.rule for f in result.findings] == [META_MALFORMED]

    def test_unused_pragma_is_reported(self, tmp_path):
        src = "X = 1  # repro: allow[fail-closed] -- nothing here\n"
        result = analyze_tree(
            tmp_path, {"repro/core/x.py": src}, rule_ids=["fail-closed"]
        )
        assert [f.rule for f in result.findings] == [META_UNUSED]

    def test_unused_pragma_for_unrun_rule_not_reported(self, tmp_path):
        src = "X = 1  # repro: allow[secret-flow] -- other rule\n"
        result = analyze_tree(
            tmp_path, {"repro/core/x.py": src}, rule_ids=["fail-closed"]
        )
        assert result.findings == []

    def test_pragma_only_suppresses_its_rule(self, tmp_path):
        src = self.BAD.replace(
            "except ValueError:",
            "except ValueError:  # repro: allow[determinism] -- wrong id",
        )
        result = analyze_tree(
            tmp_path, {"repro/core/x.py": src},
            rule_ids=["fail-closed"],
        )
        assert [f.rule for f in result.findings] == ["fail-closed"]


class TestAnalyzer:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            Analyzer(rule_ids=["no-such-rule"])

    def test_walker_skips_pycache(self, tmp_path):
        root = tmp_path / "repro"
        (root / "core").mkdir(parents=True)
        (root / "core" / "x.py").write_text("X = 1\n")
        pycache = root / "core" / "__pycache__"
        pycache.mkdir()
        (pycache / "x.py").write_text("import random\n")
        result = Analyzer(package_root=root).run()
        assert result.files == 1
        assert result.findings == []

    def test_findings_sorted_and_fingerprint_stable(self, tmp_path):
        result = analyze_tree(
            tmp_path,
            {
                "repro/core/b.py": "import random\n",
                "repro/core/a.py": "import random\n",
            },
            rule_ids=["determinism"],
        )
        assert [f.path for f in result.findings] == [
            "repro/core/a.py", "repro/core/b.py",
        ]
        finding = result.findings[0]
        assert finding.fingerprint == (
            f"determinism:{finding.path}:{finding.message}"
        )

    @pytest.mark.parametrize("rule_id", sorted(RULES))
    def test_every_rule_example_violation_fires(self, rule_id):
        module = injected_module(rule_id)
        findings = RULES[rule_id].check(module)
        assert findings, f"{rule_id} example violation did not fire"
        assert all(f.rule == rule_id for f in findings)
        assert module.display_path.endswith("::injected")


class TestBaseline:
    def _finding(self, message="m"):
        return Finding(
            rule="determinism", path="repro/core/a.py", line=1,
            message=message,
        )

    def test_clean_against_empty_baseline(self, tmp_path):
        result = analyze_tree(
            tmp_path, {"repro/core/a.py": "X = 1\n"},
            rule_ids=["determinism"],
        )
        outcome = check_against_baseline(result, [])
        assert outcome.clean

    def test_new_finding_fails(self, tmp_path):
        result = analyze_tree(
            tmp_path, {"repro/core/a.py": "import random\n"},
            rule_ids=["determinism"],
        )
        outcome = check_against_baseline(result, [])
        assert not outcome.clean
        assert len(outcome.new) == 1

    def test_baselined_finding_tolerated_and_stale_detected(self, tmp_path):
        result = analyze_tree(
            tmp_path, {"repro/core/a.py": "import random\n"},
            rule_ids=["determinism"],
        )
        fp = result.findings[0].fingerprint
        baseline = [
            {"fingerprint": fp},
            {"fingerprint": "determinism:repro/core/gone.py:old debt"},
        ]
        outcome = check_against_baseline(result, baseline)
        assert not outcome.clean  # stale entry must be deleted
        assert outcome.new == []
        assert len(outcome.tolerated) == 1
        assert len(outcome.stale) == 1

    def test_baseline_roundtrip(self, tmp_path):
        result = analyze_tree(
            tmp_path, {"repro/core/a.py": "import random\n"},
            rule_ids=["determinism"],
        )
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(result))
        outcome = check_against_baseline(result, load_baseline(path))
        assert outcome.clean

    def test_load_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []


class TestReporters:
    def test_render_json_parses(self, tmp_path):
        result = analyze_tree(
            tmp_path, {"repro/core/a.py": "import random\n"},
            rule_ids=["determinism"],
        )
        outcome = check_against_baseline(result, [])
        payload = json.loads(render_json(result, outcome))
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["check"]["clean"] is False
        assert payload["rules"][0]["id"] == "determinism"

    def test_render_text_mentions_suppressions(self, tmp_path):
        result = analyze_tree(
            tmp_path,
            {
                "repro/core/x.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except ValueError:  # repro: allow[fail-closed] -- ok\n"
                    "        pass\n"
                )
            },
            rule_ids=["fail-closed"],
        )
        text = render_text(result)
        assert "1 suppressed" in text
        assert "allow[fail-closed] -- ok" in text

    def test_shipped_namespaces_cover_core_counters(self):
        assert {"ac", "ring", "faults", "vtpm", "cluster", "resilience"} \
            <= COUNTER_NAMESPACES
