"""Unit tests for event channels, grant tables and the tpmif ring."""

import pytest

from repro.xen.event_channel import EventChannels
from repro.xen.grant_table import GrantTable
from repro.xen.memory import PhysicalMemory
from repro.xen.ring import MAX_PAYLOAD, TpmRing
from repro.util.errors import EventChannelError, GrantError, RingError


@pytest.fixture
def memory():
    return PhysicalMemory(total_pages=64)


@pytest.fixture
def events():
    return EventChannels()


@pytest.fixture
def grants(memory):
    return GrantTable(memory)


class TestEventChannels:
    def test_notify_invokes_remote_handler(self, events):
        port = events.alloc_unbound(1, 2)
        received = []
        events.bind(port, 2, lambda p: received.append(p))
        events.notify(port, 1)
        assert received == [port]

    def test_notify_is_directional(self, events):
        port = events.alloc_unbound(1, 2)
        side_a, side_b = [], []
        events.bind(port, 1, lambda p: side_a.append(p))
        events.bind(port, 2, lambda p: side_b.append(p))
        events.notify(port, 1)
        assert side_b == [port] and side_a == []
        events.notify(port, 2)
        assert side_a == [port]

    def test_third_party_cannot_bind_or_notify(self, events):
        port = events.alloc_unbound(1, 2)
        with pytest.raises(EventChannelError):
            events.bind(port, 3, lambda p: None)
        with pytest.raises(EventChannelError):
            events.notify(port, 3)

    def test_closed_port_rejected(self, events):
        port = events.alloc_unbound(1, 2)
        events.close(port)
        with pytest.raises(EventChannelError):
            events.notify(port, 1)

    def test_notification_counter(self, events):
        port = events.alloc_unbound(1, 2)
        events.bind(port, 2, lambda p: None)
        for _ in range(3):
            events.notify(port, 1)
        assert events.channel(port).notifications == 3


class TestGrantTable:
    def test_grant_map_share_flow(self, memory, grants):
        [frame] = memory.allocate(1, 1)
        gref = grants.grant_access(granter=1, grantee=2, frame=frame)
        mapped = grants.map_grant(grantee=2, granter=1, gref=gref)
        assert mapped == frame
        memory.write(2, frame, 0, b"shared!")  # grantee can now write

    def test_cannot_grant_foreign_frame(self, memory, grants):
        [frame] = memory.allocate(1, 1)
        with pytest.raises(GrantError):
            grants.grant_access(granter=2, grantee=3, frame=frame)

    def test_only_designated_grantee_maps(self, memory, grants):
        [frame] = memory.allocate(1, 1)
        gref = grants.grant_access(1, 2, frame)
        with pytest.raises(GrantError):
            grants.map_grant(grantee=3, granter=1, gref=gref)

    def test_unmap_revokes_sharing(self, memory, grants):
        [frame] = memory.allocate(1, 1)
        gref = grants.grant_access(1, 2, frame)
        grants.map_grant(2, 1, gref)
        grants.unmap_grant(2, 1, gref)
        from repro.util.errors import PageFault

        with pytest.raises(PageFault):
            memory.read(2, frame, 0, 1)

    def test_end_access_requires_unmapped(self, memory, grants):
        [frame] = memory.allocate(1, 1)
        gref = grants.grant_access(1, 2, frame)
        grants.map_grant(2, 1, gref)
        with pytest.raises(GrantError, match="still mapped"):
            grants.end_access(1, gref)
        grants.unmap_grant(2, 1, gref)
        grants.end_access(1, gref)
        assert grants.active_grants == 0

    def test_unknown_gref_rejected(self, grants):
        with pytest.raises(GrantError):
            grants.map_grant(2, 1, 99)


class TestTpmRing:
    @pytest.fixture
    def ring(self, memory, grants, events):
        return TpmRing(memory, grants, events, front_domid=5, back_domid=0)

    def test_roundtrip(self, ring):
        ring.connect_backend(lambda cmd: b"echo:" + cmd)
        assert ring.send_command(b"hello") == b"echo:hello"
        assert ring.commands_carried == 1

    def test_no_backend_rejected(self, ring):
        with pytest.raises(RingError, match="no back-end"):
            ring.send_command(b"hello")

    def test_oversized_command_rejected(self, ring):
        ring.connect_backend(lambda cmd: b"")
        with pytest.raises(RingError, match="exceeds page window"):
            ring.send_command(b"x" * (MAX_PAYLOAD + 1))

    def test_oversized_response_rejected(self, ring):
        ring.connect_backend(lambda cmd: b"y" * (MAX_PAYLOAD + 1))
        with pytest.raises(RingError):
            ring.send_command(b"hi")

    def test_max_payload_exact_fits(self, ring):
        ring.connect_backend(lambda cmd: cmd)
        payload = b"z" * MAX_PAYLOAD
        assert ring.send_command(payload) == payload

    def test_many_commands_sequential(self, ring):
        ring.connect_backend(lambda cmd: cmd[::-1])
        for i in range(50):
            msg = f"message-{i}".encode()
            assert ring.send_command(msg) == msg[::-1]
        assert ring.commands_carried == 50

    def test_teardown_releases_resources(self, memory, grants, events, ring):
        ring.connect_backend(lambda cmd: cmd)
        before_pages = memory.allocated_pages
        ring.teardown()
        assert memory.allocated_pages == before_pages - 1
        assert grants.active_grants == 0
        assert events.open_count == 0

    def test_disconnect_then_send_fails(self, ring):
        ring.connect_backend(lambda cmd: cmd)
        ring.disconnect_backend()
        with pytest.raises(RingError):
            ring.send_command(b"hello")

    def test_payload_transits_shared_page(self, memory, ring):
        """The bytes really live in the granted frame (dump-visible)."""
        ring.connect_backend(lambda cmd: b"response-data")
        ring.send_command(b"command-data")
        page = bytes(memory.page(ring.frame).data)
        assert b"response-data" in page
