"""Unit tests for the simulation kernel: clock, engine, timing."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.engine import Simulator
from repro.sim.timing import (
    CostLedger,
    CostModel,
    TimingContext,
    charge,
    context_scope,
    get_context,
    ledger_scope,
)
from repro.util.errors import SimulationError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_us == 0.0

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance(10.5)
        assert clock.now_us == 10.5
        assert clock.now_ms == pytest.approx(0.0105)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(-1)

    def test_jump_backwards_rejected(self):
        clock = VirtualClock(100)
        with pytest.raises(SimulationError):
            clock.jump_to(50)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(-5)


class TestSimulator:
    def test_process_delays_advance_clock(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.clock.now_us)
            yield 100
            trace.append(sim.clock.now_us)
            yield 50
            trace.append(sim.clock.now_us)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 100.0, 150.0]

    def test_two_processes_interleave_deterministically(self):
        sim = Simulator()
        order = []

        def proc(name, delay):
            for i in range(3):
                yield delay
                order.append((name, sim.clock.now_us))

        sim.spawn(proc("a", 10))
        sim.spawn(proc("b", 15))
        sim.run()
        # Tie at t=30 resolves by insertion order: b's event was queued at
        # t=15, before a's at t=20.
        assert order == [
            ("a", 10.0), ("b", 15.0), ("a", 20.0),
            ("b", 30.0), ("a", 30.0), ("b", 45.0),
        ]

    def test_resource_fifo_order(self):
        sim = Simulator()
        res = sim.resource("manager")
        order = []

        def client(name):
            yield res.acquire()
            order.append(name)
            yield 10
            res.release()

        for name in ("first", "second", "third"):
            sim.spawn(client(name), name)
        sim.run()
        assert order == ["first", "second", "third"]
        assert res.total_acquisitions == 3
        assert not res.busy

    def test_release_idle_resource_rejected(self):
        sim = Simulator()
        res = sim.resource()
        with pytest.raises(SimulationError):
            res.release()

    def test_negative_yield_rejected(self):
        sim = Simulator()

        def bad():
            yield -5

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc():
            yield 1000

        sim.spawn(proc())
        final = sim.run(until_us=100)
        assert final == 100.0

    def test_run_all_detects_deadlock(self):
        sim = Simulator()
        res = sim.resource()

        def holder():
            yield res.acquire()
            yield 1
            # never releases

        def waiter():
            yield res.acquire()

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_all([holder(), waiter()])

    def test_process_result_captured(self):
        sim = Simulator()

        def proc():
            yield 1
            return 42

        handle = sim.spawn(proc())
        sim.run()
        assert handle.finished and handle.result == 42


class TestCostModel:
    def test_known_op_cost(self):
        model = CostModel()
        cost = model.cost_us("hash.sha1", 1000)
        assert cost == pytest.approx(0.9 + 0.0042 * 1000)

    def test_unknown_op_rejected(self):
        with pytest.raises(SimulationError, match="unknown cost-model"):
            CostModel().cost_us("no.such.op")

    def test_cpu_scale(self):
        fast = CostModel(cpu_scale=0.5)
        slow = CostModel(cpu_scale=2.0)
        assert fast.cost_us("xen.hypercall") * 4 == pytest.approx(
            slow.cost_us("xen.hypercall")
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(SimulationError):
            CostModel(cpu_scale=0)

    def test_overrides_apply(self):
        model = CostModel(overrides={"xen.hypercall": (100.0, 0.0)})
        assert model.cost_us("xen.hypercall") == 100.0

    def test_negative_units_rejected(self):
        with pytest.raises(SimulationError):
            CostModel().cost_us("hash.sha1", -1)


class TestChargeAndLedgers:
    def test_charge_advances_ambient_clock(self):
        ctx = get_context()
        before = ctx.clock.now_us
        charge("xen.hypercall")
        assert ctx.clock.now_us > before

    def test_ledger_scope_records(self):
        with ledger_scope(name="test") as ledger:
            charge("xen.hypercall")
            charge("hash.sha1", 100)
        assert ledger.calls["xen.hypercall"] == 1
        assert ledger.calls["hash.sha1"] == 1
        assert ledger.total_us > 0

    def test_nested_ledgers_both_record(self):
        with ledger_scope(name="outer") as outer:
            charge("xen.hypercall")
            with ledger_scope(name="inner") as inner:
                charge("xen.hypercall")
        assert outer.calls["xen.hypercall"] == 2
        assert inner.calls["xen.hypercall"] == 1

    def test_cost_for_prefix(self):
        with ledger_scope() as ledger:
            charge("ac.policy.lookup")
            charge("ac.audit.append", 10)
            charge("xen.hypercall")
        assert ledger.cost_for_prefix("ac.") == pytest.approx(
            ledger.total_us - CostModel().cost_us("xen.hypercall")
        )

    def test_context_scope_restores_previous(self):
        original = get_context()
        with context_scope(TimingContext()) as inner:
            assert get_context() is inner
        assert get_context() is original

    def test_ledger_reset(self):
        ledger = CostLedger()
        with ledger_scope(ledger):
            charge("xen.hypercall")
        ledger.reset()
        assert ledger.total_us == 0.0 and not ledger.calls
