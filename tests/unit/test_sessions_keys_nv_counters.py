"""Unit tests for TPM internals: sessions, key slots, NV storage, counters."""

import pytest

from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import generate_keypair
from repro.tpm.constants import (
    MAX_KEY_SLOTS,
    TPM_KEY_SIGNING,
    TPM_KEY_STORAGE,
    TPM_KH_EK,
    TPM_KH_SRK,
)
from repro.tpm.counters import CounterTable
from repro.tpm.keys import KeySlots, LoadedKey
from repro.tpm.nvram import (
    NV_PER_AUTHWRITE,
    NV_PER_WRITEDEFINE,
    NvStorage,
)
from repro.tpm.sessions import SessionTable, compute_auth, osap_shared_secret
from repro.util.errors import TpmError


@pytest.fixture
def sessions(rng):
    return SessionTable(rng.fork("sess"))


class TestSessions:
    def test_oiap_rolls_nonce_on_success(self, sessions):
        session = sessions.open_oiap()
        first_even = session.nonce_even
        digest, odd = b"\x01" * 20, b"\x02" * 20
        auth = compute_auth(b"secret", digest, first_even, odd, True)
        new_even = sessions.verify_and_roll(
            session, b"secret", digest, odd, True, auth
        )
        assert new_even != first_even
        assert sessions.open_count == 1  # continue=True keeps it alive

    def test_failed_auth_terminates_session(self, sessions):
        session = sessions.open_oiap()
        with pytest.raises(TpmError):
            sessions.verify_and_roll(
                session, b"secret", b"\x01" * 20, b"\x02" * 20, True, b"\x00" * 20
            )
        assert sessions.open_count == 0

    def test_discontinued_session_closes(self, sessions):
        session = sessions.open_oiap()
        digest, odd = b"\x01" * 20, b"\x02" * 20
        auth = compute_auth(b"k", digest, session.nonce_even, odd, False)
        sessions.verify_and_roll(session, b"k", digest, odd, False, auth)
        assert sessions.open_count == 0

    def test_osap_uses_shared_secret(self, sessions):
        entity_secret = b"E" * 20
        nonce_odd_osap = b"\x07" * 20
        session, nonce_even_osap = sessions.open_osap(
            0x0002, 0, entity_secret, nonce_odd_osap
        )
        expected = osap_shared_secret(entity_secret, nonce_even_osap, nonce_odd_osap)
        assert session.shared_secret == expected
        assert session.hmac_key(b"ignored") == expected

    def test_session_limit(self, rng):
        table = SessionTable(rng, max_sessions=2)
        table.open_oiap()
        table.open_oiap()
        with pytest.raises(TpmError):
            table.open_oiap()

    def test_unknown_handle_rejected(self, sessions):
        with pytest.raises(TpmError):
            sessions.get(0xDEAD)

    def test_replayed_auth_fails_after_roll(self, sessions):
        """The property the replay attack relies on."""
        session = sessions.open_oiap()
        digest, odd = b"\x01" * 20, b"\x02" * 20
        auth = compute_auth(b"k", digest, session.nonce_even, odd, True)
        sessions.verify_and_roll(session, b"k", digest, odd, True, auth)
        with pytest.raises(TpmError):
            sessions.verify_and_roll(session, b"k", digest, odd, True, auth)


def _key(usage=TPM_KEY_SIGNING):
    pair = generate_keypair(512, RandomSource(b"slot-key"))
    return LoadedKey(
        handle=0, usage=usage, keypair=pair,
        usage_auth=b"U" * 20, migration_auth=b"M" * 20,
    )


class TestKeySlots:
    def test_load_assigns_unique_handles(self):
        slots = KeySlots()
        h1 = slots.load(_key())
        h2 = slots.load(_key())
        assert h1 != h2
        assert slots.get(h1).handle == h1

    def test_slot_exhaustion(self):
        slots = KeySlots(max_slots=2)
        slots.load(_key())
        slots.load(_key())
        with pytest.raises(TpmError):
            slots.load(_key())

    def test_evict_frees_slot(self):
        slots = KeySlots(max_slots=1)
        handle = slots.load(_key())
        slots.evict(handle)
        slots.load(_key())  # fits again

    def test_permanent_handles(self):
        slots = KeySlots()
        srk = _key(TPM_KEY_STORAGE)
        ek = _key(TPM_KEY_STORAGE)
        slots.install_srk(srk)
        slots.install_ek(ek)
        assert slots.get(TPM_KH_SRK) is srk
        assert slots.get(TPM_KH_EK) is ek

    def test_cannot_evict_permanent(self):
        slots = KeySlots()
        slots.install_srk(_key(TPM_KEY_STORAGE))
        with pytest.raises(TpmError):
            slots.evict(TPM_KH_SRK)

    def test_srk_missing_reports_no_srk(self):
        with pytest.raises(TpmError, match="no SRK"):
            KeySlots().get(TPM_KH_SRK)

    def test_evict_all_clears_volatile_only(self):
        slots = KeySlots()
        slots.install_srk(_key(TPM_KEY_STORAGE))
        slots.load(_key())
        slots.evict_all()
        assert slots.loaded_count == 0
        assert slots.get(TPM_KH_SRK) is not None

    def test_usage_predicates(self):
        assert _key(TPM_KEY_SIGNING).can_sign
        assert not _key(TPM_KEY_SIGNING).can_store
        assert _key(TPM_KEY_STORAGE).can_store


class TestNvStorage:
    def test_define_write_read(self):
        nv = NvStorage()
        nv.define(0x10, 16, NV_PER_AUTHWRITE, b"A" * 20)
        nv.write(0x10, 0, b"0123456789abcdef")
        assert nv.read(0x10, 4, 6) == b"456789"

    def test_fresh_area_reads_erased(self):
        nv = NvStorage()
        nv.define(0x10, 8, 0, b"A" * 20)
        assert nv.read(0x10, 0, 8) == b"\xff" * 8

    def test_capacity_enforced(self):
        nv = NvStorage(capacity=32)
        nv.define(0x1, 24, 0, b"A" * 20)
        with pytest.raises(TpmError, match="NV full"):
            nv.define(0x2, 16, 0, b"A" * 20)

    def test_size_zero_deletes(self):
        nv = NvStorage()
        nv.define(0x10, 8, 0, b"A" * 20)
        nv.define(0x10, 0, 0, b"")
        with pytest.raises(TpmError):
            nv.get(0x10)

    def test_duplicate_index_rejected(self):
        nv = NvStorage()
        nv.define(0x10, 8, 0, b"A" * 20)
        with pytest.raises(TpmError):
            nv.define(0x10, 8, 0, b"A" * 20)

    def test_out_of_bounds_write_rejected(self):
        nv = NvStorage()
        nv.define(0x10, 8, 0, b"A" * 20)
        with pytest.raises(TpmError):
            nv.write(0x10, 6, b"toolong")

    def test_out_of_bounds_read_rejected(self):
        nv = NvStorage()
        nv.define(0x10, 8, 0, b"A" * 20)
        with pytest.raises(TpmError):
            nv.read(0x10, 0, 9)

    def test_write_lock_via_writedefine(self):
        nv = NvStorage()
        nv.define(0x10, 8, NV_PER_WRITEDEFINE, b"A" * 20)
        nv.write(0x10, 0, b"lockedat")
        nv.write(0x10, 0, b"")  # size-0 write locks
        with pytest.raises(TpmError, match="write-locked"):
            nv.write(0x10, 0, b"again!!!")
        assert nv.read(0x10, 0, 8) == b"lockedat"

    def test_index_zero_reserved(self):
        with pytest.raises(TpmError):
            NvStorage().define(0, 8, 0, b"A" * 20)

    def test_used_accounting(self):
        nv = NvStorage()
        nv.define(0x1, 10, 0, b"A" * 20)
        nv.define(0x2, 20, 0, b"A" * 20)
        assert nv.used == 30
        nv.define(0x1, 0, 0, b"")
        assert nv.used == 20


class TestCounters:
    def test_values_strictly_increase(self):
        table = CounterTable()
        counter = table.create(b"ctr1", b"A" * 20)
        start = counter.value
        assert table.increment(counter.handle) == start + 1
        assert table.increment(counter.handle) == start + 2

    def test_new_counter_above_high_water(self):
        table = CounterTable()
        first = table.create(b"ctr1", b"A" * 20)
        for _ in range(5):
            table.increment(first.handle)
        second = table.create(b"ctr2", b"A" * 20)
        assert second.value > first.value

    def test_release_frees_slot(self):
        table = CounterTable(max_counters=1)
        counter = table.create(b"ctr1", b"A" * 20)
        table.release(counter.handle)
        table.create(b"ctr2", b"A" * 20)

    def test_limit_enforced(self):
        table = CounterTable(max_counters=1)
        table.create(b"ctr1", b"A" * 20)
        with pytest.raises(TpmError):
            table.create(b"ctr2", b"A" * 20)

    def test_label_must_be_4_bytes(self):
        with pytest.raises(TpmError):
            CounterTable().create(b"long-label", b"A" * 20)

    def test_unknown_handle_rejected(self):
        with pytest.raises(TpmError):
            CounterTable().get(0x123)
