"""Unit tests: ChangeAuth, key migration ordinals, DIR, locality frontends."""

import hashlib

import pytest

from repro.crypto.random_source import RandomSource
from repro.tpm.client import TpmClient
from repro.tpm.constants import (
    TPM_AUTHFAIL,
    TPM_BAD_MIGRATION,
    TPM_DECRYPT_ERROR,
    TPM_KEY_SIGNING,
    TPM_KH_SRK,
)
from repro.tpm.device import TpmDevice
from repro.util.errors import TpmError

from tests.conftest import OWNER, SRK

KEY_AUTH = b"K" * 20
NEW_AUTH = b"W" * 20
MIG_AUTH = b"M" * 20


@pytest.fixture
def signing_blob(owned_client):
    return owned_client.create_wrap_key(
        TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512,
        migration_auth=MIG_AUTH,
    )


class TestChangeAuth:
    def test_new_auth_works_old_does_not(self, owned_client, signing_blob):
        new_blob = owned_client.change_auth(
            TPM_KH_SRK, SRK, signing_blob, KEY_AUTH, NEW_AUTH
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, new_blob)
        digest = hashlib.sha1(b"m").digest()
        signature = owned_client.sign(handle, NEW_AUTH, digest)
        assert owned_client.get_pub_key(handle, NEW_AUTH).verify_sha1(
            digest, signature
        )
        with pytest.raises(TpmError) as err:
            owned_client.sign(handle, KEY_AUTH, digest)
        assert err.value.code == TPM_AUTHFAIL

    def test_wrong_old_auth_rejected(self, owned_client, signing_blob):
        with pytest.raises(TpmError) as err:
            owned_client.change_auth(
                TPM_KH_SRK, SRK, signing_blob, b"Z" * 20, NEW_AUTH
            )
        assert err.value.code == TPM_AUTHFAIL

    def test_same_key_material_preserved(self, owned_client, signing_blob):
        handle_old = owned_client.load_key2(TPM_KH_SRK, SRK, signing_blob)
        pub_old = owned_client.get_pub_key(handle_old, KEY_AUTH)
        new_blob = owned_client.change_auth(
            TPM_KH_SRK, SRK, signing_blob, KEY_AUTH, NEW_AUTH
        )
        handle_new = owned_client.load_key2(TPM_KH_SRK, SRK, new_blob)
        assert owned_client.get_pub_key(handle_new, NEW_AUTH).n == pub_old.n


class TestKeyMigration:
    @pytest.fixture
    def destination(self, rng):
        device = TpmDevice(rng.fork("dst"), key_bits=512)
        device.power_on()
        client = TpmClient(device.execute, rng.fork("dstc"))
        ek = client.read_pubek()
        client.take_ownership(OWNER, SRK, ek)
        srk_pub = device.state.keys.srk.keypair.public
        return device, client, srk_pub

    def test_full_migration_roundtrip(self, owned_client, signing_blob, destination):
        _dst_dev, dst_client, dst_srk_pub = destination
        package = owned_client.create_migration_blob(
            TPM_KH_SRK, SRK, signing_blob, MIG_AUTH, dst_srk_pub
        )
        new_blob = dst_client.convert_migration_blob(TPM_KH_SRK, SRK, package)
        handle = dst_client.load_key2(TPM_KH_SRK, SRK, new_blob)
        digest = hashlib.sha1(b"migrated").digest()
        signature = dst_client.sign(handle, KEY_AUTH, digest)
        # Same key pair now lives on the destination.
        src_handle = owned_client.load_key2(TPM_KH_SRK, SRK, signing_blob)
        src_pub = owned_client.get_pub_key(src_handle, KEY_AUTH)
        assert src_pub.verify_sha1(digest, signature)

    def test_wrong_migration_auth_rejected(self, owned_client, signing_blob,
                                           destination):
        _d, _c, dst_srk_pub = destination
        with pytest.raises(TpmError) as err:
            owned_client.create_migration_blob(
                TPM_KH_SRK, SRK, signing_blob, b"Z" * 20, dst_srk_pub
            )
        assert err.value.code == TPM_AUTHFAIL

    def test_nonmigratable_key_refused(self, owned_client, destination):
        _d, _c, dst_srk_pub = destination
        aik_blob, _ = owned_client.make_identity(OWNER, KEY_AUTH, b"aik")
        # AIK migration_auth is tpmProof: whatever auth the caller guesses,
        # the TPM must refuse on the non-migratable check first.
        with pytest.raises(TpmError) as err:
            owned_client.create_migration_blob(
                TPM_KH_SRK, SRK, aik_blob, b"?" * 20, dst_srk_pub
            )
        assert err.value.code in (TPM_BAD_MIGRATION, TPM_AUTHFAIL)

    def test_package_bound_to_destination(self, owned_client, signing_blob,
                                          destination, rng):
        """A third TPM cannot convert a package made for the destination."""
        _d, _c, dst_srk_pub = destination
        package = owned_client.create_migration_blob(
            TPM_KH_SRK, SRK, signing_blob, MIG_AUTH, dst_srk_pub
        )
        third = TpmDevice(rng.fork("third"), key_bits=512)
        third.power_on()
        third_client = TpmClient(third.execute, rng.fork("thirdc"))
        ek = third_client.read_pubek()
        third_client.take_ownership(OWNER, SRK, ek)
        with pytest.raises(TpmError) as err:
            third_client.convert_migration_blob(TPM_KH_SRK, SRK, package)
        assert err.value.code == TPM_DECRYPT_ERROR


class TestDirAndTestResult:
    def test_dir_write_read(self, owned_client):
        value = hashlib.sha1(b"integrity").digest()
        owned_client.dir_write(OWNER, value)
        assert owned_client.dir_read() == value

    def test_dir_requires_owner_auth(self, owned_client):
        with pytest.raises(TpmError) as err:
            owned_client.dir_write(b"Z" * 20, b"\x00" * 20)
        assert err.value.code == TPM_AUTHFAIL

    def test_dir_survives_state_roundtrip(self, owned_client, tpm_device):
        value = hashlib.sha1(b"persisted").digest()
        owned_client.dir_write(OWNER, value)
        restored = TpmDevice.from_state_blob(tpm_device.save_state_blob())
        assert restored.state.dir_register == value

    def test_only_dir_zero(self, owned_client):
        with pytest.raises(TpmError):
            owned_client.dir_read(index=1)

    def test_get_test_result(self, tpm_client):
        assert tpm_client.get_test_result() == b"\x00\x00"


class TestLocalityFrontend:
    def test_high_locality_frontend_can_reset_drtm_pcrs(self, baseline_platform):
        from repro.tpm.client import TpmClient
        from repro.vtpm.backend import VtpmBackend
        from repro.vtpm.frontend import VtpmFrontend

        platform = baseline_platform
        guest = platform.xen.create_domain("drtm-guest", b"tboot-kernel")
        instance = platform.manager.create_instance(guest)
        frontend = VtpmFrontend(platform.xen, guest, 0, locality=2)
        VtpmBackend(platform.xen, platform.manager, frontend, instance.instance_id)
        client = TpmClient(frontend.transport, platform.rng.fork("drtm"))
        client.extend(17, b"\x17" * 20)
        client.pcr_reset([17])
        assert client.pcr_read(17) == b"\x00" * 20

    def test_default_locality_cannot_reset(self, baseline_platform):
        guest = baseline_platform.add_guest("normal")
        guest.client.extend(17, b"\x17" * 20)
        with pytest.raises(TpmError):
            guest.client.pcr_reset([17])

    def test_invalid_locality_rejected(self, baseline_platform):
        from repro.util.errors import VtpmError
        from repro.vtpm.frontend import VtpmFrontend

        guest = baseline_platform.xen.create_domain("bad-loc", b"k")
        with pytest.raises(VtpmError):
            VtpmFrontend(baseline_platform.xen, guest, 0, locality=7)
