"""Unit tests for the identity registry and the policy engine."""

import pytest

from repro.core.identity import DomainIdentity, IdentityRegistry, measure_domain
from repro.core.policy import (
    ANY,
    CommandClass,
    PolicyEngine,
    classify_ordinal,
)
from repro.crypto.random_source import RandomSource
from repro.tpm import constants as tc
from repro.util.errors import AccessControlError, IdentityError
from repro.xen.hypervisor import Xen


@pytest.fixture
def xen():
    return Xen(RandomSource(b"idpol"))


class TestIdentity:
    def test_measurement_depends_on_kernel(self, xen):
        a = xen.create_domain("a", b"kernel-v1")
        b = xen.create_domain("b", b"kernel-v2")
        assert measure_domain(a) != measure_domain(b)

    def test_measurement_depends_on_name(self, xen):
        a = xen.create_domain("name-a", b"same-kernel")
        b = xen.create_domain("name-b", b"same-kernel")
        assert measure_domain(a) != measure_domain(b)

    def test_measurement_depends_on_config(self, xen):
        a = xen.create_domain("a", b"k", config={"vtpm": "1"})
        b = xen.create_domain("b", b"k", config={"vtpm": "1", "extra": "x"})
        assert measure_domain(a) != measure_domain(b)

    def test_config_order_irrelevant(self, xen):
        a = xen.create_domain("same", b"k", config={"x": "1", "y": "2"})
        m1 = measure_domain(a)
        a.config = {"y": "2", "x": "1"}
        assert measure_domain(a) == m1

    def test_register_then_verify(self, xen):
        registry = IdentityRegistry()
        domain = xen.create_domain("g", b"k")
        identity = registry.register(domain)
        assert registry.verify_current(domain) == identity
        assert domain.measurement == identity.measurement

    def test_unregistered_verify_fails(self, xen):
        registry = IdentityRegistry()
        domain = xen.create_domain("g", b"k")
        with pytest.raises(IdentityError, match="never measured"):
            registry.verify_current(domain)

    def test_tampered_live_measurement_fails(self, xen):
        registry = IdentityRegistry()
        domain = xen.create_domain("g", b"k")
        registry.register(domain)
        domain.measurement = b"\x00" * 32  # rebuilt with different kernel
        with pytest.raises(IdentityError, match="mismatch"):
            registry.verify_current(domain)

    def test_forget(self, xen):
        registry = IdentityRegistry()
        domain = xen.create_domain("g", b"k")
        registry.register(domain)
        registry.forget(domain.domid)
        assert registry.lookup(domain.domid) is None

    def test_identity_requires_sha256_size(self):
        with pytest.raises(IdentityError):
            DomainIdentity(measurement=b"short", name="x", uuid="y")

    def test_short_form(self, xen):
        registry = IdentityRegistry()
        identity = registry.register(xen.create_domain("g", b"k"))
        assert len(identity.short()) == 12
        assert identity.hex.startswith(identity.short())


SUBJ_A = "aa" * 32
SUBJ_B = "bb" * 32


class TestPolicyEngine:
    def test_deny_by_default(self):
        engine = PolicyEngine()
        decision = engine.decide(SUBJ_A, 1, tc.TPM_ORD_PcrRead)
        assert not decision.allowed

    def test_exact_grant(self):
        engine = PolicyEngine()
        engine.add_rule(SUBJ_A, 1, CommandClass.READ)
        assert engine.decide(SUBJ_A, 1, tc.TPM_ORD_PcrRead).allowed
        assert not engine.decide(SUBJ_A, 2, tc.TPM_ORD_PcrRead).allowed
        assert not engine.decide(SUBJ_B, 1, tc.TPM_ORD_PcrRead).allowed

    def test_class_granularity(self):
        engine = PolicyEngine()
        engine.add_rule(SUBJ_A, 1, CommandClass.READ)
        assert not engine.decide(SUBJ_A, 1, tc.TPM_ORD_Extend).allowed
        assert not engine.decide(SUBJ_A, 1, tc.TPM_ORD_OwnerClear).allowed

    def test_wildcard_subject(self):
        engine = PolicyEngine()
        engine.add_rule(ANY, 1, CommandClass.READ)
        assert engine.decide(SUBJ_A, 1, tc.TPM_ORD_PcrRead).allowed
        assert engine.decide(SUBJ_B, 1, tc.TPM_ORD_PcrRead).allowed

    def test_wildcard_instance(self):
        engine = PolicyEngine()
        engine.add_rule(SUBJ_A, ANY, CommandClass.MEASURE)
        assert engine.decide(SUBJ_A, 7, tc.TPM_ORD_Extend).allowed
        assert engine.decide(SUBJ_A, 8, tc.TPM_ORD_Extend).allowed

    def test_grant_owner_covers_normal_use(self):
        engine = PolicyEngine()
        engine.grant_owner(SUBJ_A, 3)
        for ordinal in (
            tc.TPM_ORD_PcrRead, tc.TPM_ORD_Extend, tc.TPM_ORD_Quote,
            tc.TPM_ORD_Seal, tc.TPM_ORD_TakeOwnership, tc.TPM_ORD_OIAP,
            tc.TPM_ORD_NV_WriteValue,
        ):
            assert engine.decide(SUBJ_A, 3, ordinal).allowed, hex(ordinal)

    def test_unknown_ordinal_never_allowed(self):
        engine = PolicyEngine()
        engine.grant_owner(SUBJ_A, 1)
        assert not engine.decide(SUBJ_A, 1, 0x7FFFFFFF).allowed

    def test_revoke_rule(self):
        engine = PolicyEngine()
        [rule] = engine.add_rule(SUBJ_A, 1, CommandClass.READ)
        engine.revoke_rule(rule.rule_id)
        assert not engine.decide(SUBJ_A, 1, tc.TPM_ORD_PcrRead).allowed

    def test_revoke_subject_removes_everything(self):
        engine = PolicyEngine()
        engine.grant_owner(SUBJ_A, 1)
        engine.grant_owner(SUBJ_B, 1)
        removed = engine.revoke_subject(SUBJ_A)
        assert removed == 6
        assert not engine.decide(SUBJ_A, 1, tc.TPM_ORD_PcrRead).allowed
        assert engine.decide(SUBJ_B, 1, tc.TPM_ORD_PcrRead).allowed

    def test_revoke_unknown_rule_rejected(self):
        with pytest.raises(AccessControlError):
            PolicyEngine().revoke_rule(42)

    def test_empty_classes_rejected(self):
        with pytest.raises(AccessControlError):
            PolicyEngine().add_rule(SUBJ_A, 1, [])

    def test_decision_carries_rule_id(self):
        engine = PolicyEngine()
        [rule] = engine.add_rule(SUBJ_A, 1, CommandClass.READ)
        decision = engine.decide(SUBJ_A, 1, tc.TPM_ORD_PcrRead)
        assert decision.rule_id == rule.rule_id

    def test_rule_count(self):
        engine = PolicyEngine()
        engine.grant_owner(SUBJ_A, 1)
        assert engine.rule_count == 6


class TestClassification:
    def test_every_implemented_ordinal_classified(self):
        from repro.tpm.dispatch import registered_ordinals

        for ordinal in registered_ordinals():
            assert classify_ordinal(ordinal) is not CommandClass.UNKNOWN, (
                f"ordinal {ordinal:#x} has no policy class"
            )

    def test_specific_classes(self):
        assert classify_ordinal(tc.TPM_ORD_Extend) is CommandClass.MEASURE
        assert classify_ordinal(tc.TPM_ORD_Quote) is CommandClass.USE_KEY
        assert classify_ordinal(tc.TPM_ORD_OwnerClear) is CommandClass.OWNER_ADMIN
        assert classify_ordinal(tc.TPM_ORD_OIAP) is CommandClass.SESSION
        assert classify_ordinal(0xDEADBEEF) is CommandClass.UNKNOWN
