"""Unit tests for the vTPM subsystem: instances, manager, storage, drivers."""

import pytest

from repro.core.config import AccessMode
from repro.tpm import marshal
from repro.tpm.constants import TPM_AUTHFAIL, TPM_ORD_GetRandom, TPM_SUCCESS
from repro.util.bytesio import ByteWriter
from repro.util.errors import TpmError, VtpmError
from repro.vtpm.storage import (
    DiskStore,
    VtpmStorage,
    decode_generation,
    latest_raw_payload,
)


def _get_random_wire(count: int = 8) -> bytes:
    return marshal.build_command(TPM_ORD_GetRandom, ByteWriter().u32(count).getvalue())


class TestDiskStore:
    def test_write_read_roundtrip(self):
        disk = DiskStore()
        disk.write("file-a", b"contents")
        assert disk.read("file-a") == b"contents"
        assert disk.exists("file-a")

    def test_missing_file(self):
        with pytest.raises(VtpmError):
            DiskStore().read("ghost")

    def test_delete(self):
        disk = DiskStore()
        disk.write("f", b"x")
        disk.delete("f")
        assert not disk.exists("f")

    def test_raw_contents_is_thief_view(self):
        disk = DiskStore()
        disk.write("a", b"1")
        disk.write("b", b"2")
        loot = disk.raw_contents()
        assert loot == {"a": b"1", "b": b"2"}
        loot["a"] = b"tampered"
        assert disk.read("a") == b"1"  # a copy, not the store

    def test_list_files_sorted(self):
        disk = DiskStore()
        for name in ("zz", "aa", "mm"):
            disk.write(name, b"")
        assert disk.list_files() == ["aa", "mm", "zz"]


class TestVtpmStorage:
    def test_plaintext_roundtrip(self):
        storage = VtpmStorage(DiskStore(), sealer=None)
        name = storage.save_instance_state("uuid-x", None, b"cleartext state")
        assert storage.load_instance_state("uuid-x", None) == b"cleartext state"
        # Baseline really is plaintext at rest: the generation frame wraps
        # the payload but does nothing to hide it.
        raw = storage.disk.raw_contents()[name]
        generation, payload = decode_generation(raw)
        assert generation == 1
        assert payload == b"cleartext state"
        assert latest_raw_payload(storage.disk.raw_contents(), "uuid-x") == (
            b"cleartext state"
        )

    def test_generations_advance_and_prune(self):
        storage = VtpmStorage(DiskStore(), sealer=None)
        for i in range(5):
            storage.save_instance_state("u", None, b"state-%d" % i)
        # Retention window: latest plus one fallback.
        assert storage.generations("u") == [4, 5]
        assert storage.load_instance_state("u", None) == b"state-4"

    def test_delete(self):
        storage = VtpmStorage(DiskStore())
        storage.save_instance_state("u", None, b"s")
        assert storage.has_state("u")
        storage.delete_instance_state("u")
        assert not storage.has_state("u")


class TestInstances:
    def test_instance_state_resident_in_memory(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        instance = baseline_platform.manager.instance(guest.instance_id)
        image = instance.memory_image()
        assert image == instance.device.save_state_blob()

    def test_state_image_tracks_commands(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        instance = baseline_platform.manager.instance(guest.instance_id)
        before = instance.memory_image()
        guest.client.extend(3, b"\x77" * 20)
        after = instance.memory_image()
        assert before != after

    def test_state_region_grows_with_state(self, improved_platform):
        """A growing state image reallocates frames and keeps protection."""
        platform = improved_platform
        platform.manager.nv_capacity = 1 << 18
        guest = platform.add_guest("grower")
        instance = platform.manager.instance(guest.instance_id)
        old_frames = list(instance.state_region.frames)
        ek = guest.client.read_pubek()
        guest.client.take_ownership(b"o" * 20, b"s" * 20, ek)
        from repro.tpm.nvram import NV_PER_AUTHWRITE

        guest.client.nv_define(b"o" * 20, 0x99, 80_000, NV_PER_AUTHWRITE, b"n" * 20)
        instance = platform.manager.instance(guest.instance_id)
        assert instance.state_region.frames != old_frames
        assert all(
            platform.xen.memory.page(f).protected
            for f in instance.state_region.frames
        )

    def test_teardown_scrubs_and_frees(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        instance = platform.manager.instance(guest.instance_id)
        frames = list(instance.state_region.frames)
        platform.manager.destroy_instance(guest.instance_id, persist=False)
        assert all(f not in platform.xen.memory.frames_owned_by(0) for f in frames)


class TestManager:
    def test_one_instance_per_vm(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        with pytest.raises(VtpmError, match="already has vTPM"):
            baseline_platform.manager.create_instance(guest.domain)

    def test_unknown_instance_answers_authfail(self, baseline_platform):
        response = baseline_platform.manager.handle_command(0, 999, _get_random_wire())
        assert marshal.parse_response(response).return_code == TPM_AUTHFAIL

    def test_instances_are_isolated(self, baseline_platform):
        a = baseline_platform.add_guest("a")
        b = baseline_platform.add_guest("b")
        a.client.extend(5, b"\x01" * 20)
        assert b.client.pcr_read(5) == b"\x00" * 20

    def test_instance_lookup_by_vm(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        instance = baseline_platform.manager.instance_for_vm(guest.domain.uuid)
        assert instance.instance_id == guest.instance_id
        with pytest.raises(VtpmError):
            baseline_platform.manager.instance_for_vm("no-such-uuid")

    def test_save_and_restore_instance(self, baseline_platform):
        platform = baseline_platform
        guest = platform.add_guest("g")
        guest.client.extend(7, b"\x09" * 20)
        expected = guest.client.pcr_read(7)
        platform.manager.save_instance(guest.instance_id)
        platform.manager.destroy_instance(guest.instance_id, persist=True)
        # The VM reboots: same name/kernel → same identity.
        platform.xen.destroy_domain(guest.domain.domid)
        rebooted = platform.xen.create_domain(
            "g", kernel_image=guest.domain.kernel_image,
            config=dict(guest.domain.config),
        )
        # Manager keys state by VM uuid; a rebooted domain gets a new uuid,
        # so restore goes through the old uuid's file.
        restored = platform.manager.restore_instance(guest.domain)
        from repro.tpm.client import TpmClient

        client = TpmClient(
            lambda wire: platform.manager.handle_command(
                guest.domain.domid, restored.instance_id, wire
            ),
            platform.rng.fork("restored"),
        )
        assert client.pcr_read(7) == expected

    def test_improved_restore_requires_matching_identity(self, improved_platform):
        platform = improved_platform
        guest = platform.add_guest("g")
        platform.manager.save_instance(guest.instance_id)
        platform.manager.destroy_instance(guest.instance_id)
        # An imposter domain with a different kernel cannot load the state:
        imposter = platform.xen.create_domain("g-imposter", b"evil-kernel")
        platform.identities.register(imposter)
        imposter.uuid = guest.domain.uuid  # even stealing the uuid
        from repro.util.errors import SealingError

        with pytest.raises(SealingError):
            platform.manager.restore_instance(imposter)

    def test_counters(self, baseline_platform):
        platform = baseline_platform
        a = platform.add_guest("a")
        platform.add_guest("b")
        assert platform.manager.instance_count == 2
        a.client.get_random(4)
        assert platform.manager.commands_dispatched == 1
        assert platform.manager.commands_denied == 0


class TestSplitDriver:
    def test_xenstore_handshake_nodes(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        store = baseline_platform.xen.store
        base = f"/local/domain/{guest.domain.domid}/device/vtpm/0"
        assert store.read(0, f"{base}/state", privileged=True) == "4"
        assert int(store.read(0, f"{base}/ring-ref", privileged=True)) == \
            guest.frontend.ring.gref
        backend = f"/local/domain/0/backend/vtpm/{guest.domain.domid}/0/instance"
        assert int(store.read(0, backend, privileged=True)) == guest.instance_id

    def test_frontend_close_disconnects(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        guest.frontend.close()
        with pytest.raises(VtpmError):
            guest.frontend.transport(_get_random_wire())

    def test_paused_guest_cannot_transact(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        baseline_platform.xen.pause_domain(guest.domain.domid)
        from repro.util.errors import XenError

        with pytest.raises(XenError):
            guest.client.get_random(4)

    def test_rebind_changes_routing(self, baseline_platform):
        a = baseline_platform.add_guest("a")
        b = baseline_platform.add_guest("b")
        b.client.extend(5, b"\x44" * 20)
        expected = b.client.pcr_read(5)
        a.backend.rebind(b.instance_id)
        assert a.client.pcr_read(5) == expected  # stock Xen: hijack works
