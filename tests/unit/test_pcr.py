"""Unit tests for the PCR bank and selections."""

import hashlib

import pytest

from repro.tpm.constants import DIGEST_SIZE, NUM_PCRS
from repro.tpm.pcr import PcrBank, PcrSelection
from repro.util.bytesio import ByteReader
from repro.util.errors import TpmError

ZERO = b"\x00" * DIGEST_SIZE
M1 = b"\x11" * DIGEST_SIZE
M2 = b"\x22" * DIGEST_SIZE


class TestPcrBank:
    def test_starts_zeroed(self):
        bank = PcrBank()
        for i in range(NUM_PCRS):
            assert bank.read(i) == ZERO

    def test_extend_formula(self):
        bank = PcrBank()
        new = bank.extend(3, M1)
        assert new == hashlib.sha1(ZERO + M1).digest()
        assert bank.read(3) == new

    def test_extend_is_order_sensitive(self):
        a, b = PcrBank(), PcrBank()
        a.extend(0, M1)
        a.extend(0, M2)
        b.extend(0, M2)
        b.extend(0, M1)
        assert a.read(0) != b.read(0)

    def test_extend_rejects_bad_index(self):
        with pytest.raises(TpmError):
            PcrBank().extend(NUM_PCRS, M1)
        with pytest.raises(TpmError):
            PcrBank().extend(-1, M1)

    def test_extend_rejects_bad_length(self):
        with pytest.raises(TpmError):
            PcrBank().extend(0, b"short")

    def test_reset_requires_resettable_range(self):
        bank = PcrBank()
        bank.extend(5, M1)
        with pytest.raises(TpmError):
            bank.reset(5, locality=4)

    def test_reset_requires_locality(self):
        bank = PcrBank()
        bank.extend(17, M1)
        with pytest.raises(TpmError):
            bank.reset(17, locality=1)
        bank.reset(17, locality=2)
        assert bank.read(17) == ZERO

    def test_startup_clear_zeroes_all(self):
        bank = PcrBank()
        bank.extend(0, M1)
        bank.extend(23, M2)
        bank.startup_clear()
        assert bank.read(0) == ZERO and bank.read(23) == ZERO

    def test_snapshot_restore_roundtrip(self):
        bank = PcrBank()
        bank.extend(7, M1)
        snap = bank.snapshot()
        other = PcrBank()
        other.restore(snap)
        assert other.read(7) == bank.read(7)

    def test_restore_validates_count(self):
        with pytest.raises(TpmError):
            PcrBank().restore([ZERO] * 5)

    def test_restore_validates_length(self):
        with pytest.raises(TpmError):
            PcrBank().restore([b"x"] * NUM_PCRS)

    def test_snapshot_is_a_copy(self):
        bank = PcrBank()
        snap = bank.snapshot()
        bank.extend(0, M1)
        assert snap[0] == ZERO


class TestComposite:
    def test_composite_depends_on_values(self):
        bank = PcrBank()
        sel = PcrSelection([1, 2])
        before = bank.composite_digest(sel)
        bank.extend(1, M1)
        assert bank.composite_digest(sel) != before

    def test_composite_ignores_unselected(self):
        bank = PcrBank()
        sel = PcrSelection([1, 2])
        before = bank.composite_digest(sel)
        bank.extend(9, M1)
        assert bank.composite_digest(sel) == before

    def test_composite_of_matches_bank(self):
        bank = PcrBank()
        bank.extend(4, M1)
        sel = PcrSelection([0, 4])
        values = [bank.read(0), bank.read(4)]
        assert PcrBank.composite_of(sel, values) == bank.composite_digest(sel)

    def test_composite_of_rejects_wrong_count(self):
        with pytest.raises(TpmError):
            PcrBank.composite_of(PcrSelection([0, 1]), [ZERO])


class TestPcrSelection:
    def test_contains(self):
        sel = PcrSelection([0, 5, 23])
        assert 0 in sel and 5 in sel and 23 in sel
        assert 1 not in sel

    def test_indices_sorted(self):
        assert PcrSelection([9, 2, 17]).indices == [2, 9, 17]

    def test_empty_is_falsy(self):
        assert not PcrSelection()
        assert PcrSelection([0])

    def test_out_of_range_rejected(self):
        with pytest.raises(TpmError):
            PcrSelection([NUM_PCRS])

    def test_serialize_roundtrip(self):
        sel = PcrSelection([0, 7, 8, 23])
        restored = PcrSelection.deserialize(ByteReader(sel.serialize()))
        assert restored == sel

    def test_equality_and_hash(self):
        assert PcrSelection([1, 2]) == PcrSelection([2, 1])
        assert hash(PcrSelection([1, 2])) == hash(PcrSelection([2, 1]))
        assert PcrSelection([1]) != PcrSelection([2])
