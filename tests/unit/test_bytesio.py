"""Unit tests for the big-endian byte reader/writer."""

import pytest

from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import MarshalError


class TestByteWriter:
    def test_u8_roundtrip_bounds(self):
        w = ByteWriter()
        w.u8(0).u8(255)
        assert w.getvalue() == b"\x00\xff"

    def test_u8_rejects_out_of_range(self):
        with pytest.raises(MarshalError):
            ByteWriter().u8(256)
        with pytest.raises(MarshalError):
            ByteWriter().u8(-1)

    def test_u16_big_endian(self):
        assert ByteWriter().u16(0x1234).getvalue() == b"\x12\x34"

    def test_u32_big_endian(self):
        assert ByteWriter().u32(0xDEADBEEF).getvalue() == b"\xde\xad\xbe\xef"

    def test_u64_big_endian(self):
        assert (
            ByteWriter().u64(0x0102030405060708).getvalue()
            == bytes(range(1, 9))
        )

    def test_u16_rejects_out_of_range(self):
        with pytest.raises(MarshalError):
            ByteWriter().u16(1 << 16)

    def test_u32_rejects_out_of_range(self):
        with pytest.raises(MarshalError):
            ByteWriter().u32(1 << 32)

    def test_sized_prefixes_length(self):
        out = ByteWriter().sized(b"abc").getvalue()
        assert out == b"\x00\x00\x00\x03abc"

    def test_sized_empty(self):
        assert ByteWriter().sized(b"").getvalue() == b"\x00\x00\x00\x00"

    def test_len_tracks_bytes(self):
        w = ByteWriter()
        w.u32(1)
        w.raw(b"xyz")
        assert len(w) == 7

    def test_chaining(self):
        out = ByteWriter().u8(1).u16(2).u32(3).getvalue()
        assert out == b"\x01\x00\x02\x00\x00\x00\x03"


class TestByteReader:
    def test_reads_fields_in_order(self):
        r = ByteReader(b"\x01\x00\x02\x00\x00\x00\x03")
        assert r.u8() == 1
        assert r.u16() == 2
        assert r.u32() == 3
        r.expect_end()

    def test_short_read_raises(self):
        r = ByteReader(b"\x01")
        with pytest.raises(MarshalError, match="short read"):
            r.u32()

    def test_expect_end_rejects_trailing(self):
        r = ByteReader(b"\x01\x02")
        r.u8()
        with pytest.raises(MarshalError, match="trailing"):
            r.expect_end()

    def test_sized_roundtrip(self):
        blob = ByteWriter().sized(b"hello world").getvalue()
        assert ByteReader(blob).sized() == b"hello world"

    def test_sized_cap_enforced(self):
        blob = ByteWriter().sized(b"x" * 100).getvalue()
        with pytest.raises(MarshalError, match="exceeds cap"):
            ByteReader(blob).sized(max_size=10)

    def test_rest_consumes_remaining(self):
        r = ByteReader(b"\x01rest-of-data")
        r.u8()
        assert r.rest() == b"rest-of-data"
        assert r.remaining() == 0

    def test_position_tracking(self):
        r = ByteReader(b"\x00" * 10)
        assert r.position == 0
        r.u32()
        assert r.position == 4
        assert r.remaining() == 6

    def test_negative_raw_read_rejected(self):
        with pytest.raises(MarshalError):
            ByteReader(b"abc").raw(-1)

    def test_u64_roundtrip(self):
        blob = ByteWriter().u64(2**63 + 5).getvalue()
        assert ByteReader(blob).u64() == 2**63 + 5
