"""Unit tests for the xm-style admin tooling and new CLI subcommands."""

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform
from repro.xen import tools
from repro.util.errors import XenError


class TestXmTools:
    def test_xm_list_shows_all_domains(self, baseline_platform):
        baseline_platform.add_guest("alpha")
        baseline_platform.add_guest("beta")
        out = tools.xm_list(baseline_platform.dom0_hypercalls())
        assert "Domain-0" in out and "alpha" in out and "beta" in out

    def test_xm_list_requires_privilege(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        hc = baseline_platform.hypercalls_for(guest.domain.domid)
        with pytest.raises(XenError):
            tools.xm_list(hc)

    def test_xm_info_counts(self, baseline_platform):
        baseline_platform.add_guest("g")
        out = tools.xm_info(baseline_platform.dom0_hypercalls())
        assert "live_domains" in out and "active_grants" in out

    def test_xm_vcpu_list(self, baseline_platform):
        guest = baseline_platform.add_guest("g")
        out = tools.xm_vcpu_list(
            baseline_platform.dom0_hypercalls(), guest.domain.domid
        )
        assert "rax" in out and "rip" in out

    def test_dump_core_baseline_vs_improved(self):
        """The headline difference, through the actual admin tool."""
        for mode, expect_leak in (
            (AccessMode.BASELINE, True),
            (AccessMode.IMPROVED, False),
        ):
            platform = build_platform(mode, seed=46)
            guest = platform.add_guest("victim")
            ek = guest.client.read_pubek()
            guest.client.take_ownership(b"O" * 20, b"S" * 20, ek)
            instance = platform.manager.instance(guest.instance_id)
            secrets = instance.device.state.secret_material()
            image = tools.xm_dump_core(
                platform.dom0_hypercalls(), platform.manager.manager_domid
            )
            leaked = any(s in image for s in secrets if len(s) >= 16)
            assert leaked == expect_leak, mode

    def test_xm_destroy(self, baseline_platform):
        guest = baseline_platform.add_guest("doomed")
        tools.xm_destroy(baseline_platform.dom0_hypercalls(), guest.domain.domid)
        assert not guest.domain.is_alive

    def test_xenstore_ls_recursive(self, baseline_platform):
        baseline_platform.add_guest("g")
        paths = tools.xenstore_ls(baseline_platform.dom0_hypercalls())
        assert any(p.endswith("/ring-ref") for p in paths)
        assert any("/vtpm/" in p for p in paths)


class TestNewCliCommands:
    def test_xm_list_cli(self, capsys):
        from repro.cli import main

        assert main(["xm", "list", "--guests", "1", "--mode", "baseline"]) == 0
        assert "Domain-0" in capsys.readouterr().out

    def test_xm_dump_core_cli(self, capsys):
        from repro.cli import main

        assert main(["xm", "dump-core", "--domid", "0",
                     "--mode", "baseline"]) == 0
        assert "dumped" in capsys.readouterr().out

    def test_replay_trace_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "--guests", "2", "--rate", "30",
                     "--duration", "0.1"]) == 0
        trace_text = capsys.readouterr().out
        path = tmp_path / "t.trace"
        path.write_text(trace_text)
        assert main(["replay-trace", str(path), "--mode", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "trace replay" in out
