"""Unit tests for the hardware-TPM-rooted state sealer."""

import hashlib

import pytest

from repro.core.sealing import StateSealer
from repro.crypto.random_source import RandomSource
from repro.tpm.client import TpmClient
from repro.tpm.device import TpmDevice
from repro.util.errors import SealingError

OWNER = b"seal-owner-auth!!!!!"
SRK = b"seal-srk-auth!!!!!!!"


@pytest.fixture
def hw(rng):
    device = TpmDevice(rng.fork("hw"), key_bits=512)
    device.power_on()
    client = TpmClient(device.execute, rng.fork("hwc"))
    ek = client.read_pubek()
    client.take_ownership(OWNER, SRK, ek)
    for i, stage in enumerate((b"bios", b"loader", b"kernel")):
        client.extend(i, hashlib.sha1(stage).digest())
    return device, client


@pytest.fixture
def sealer(hw, rng):
    _device, client = hw
    sealer = StateSealer(client, SRK, rng.fork("sealer"))
    sealer.initialize(pcr_indices=(0, 1, 2))
    return sealer


class TestRootLifecycle:
    def test_initialize_unlocks(self, sealer):
        assert sealer.unlocked
        assert sealer.sealed_root_blob is not None

    def test_lock_then_unlock(self, sealer):
        sealer.lock()
        assert not sealer.unlocked
        sealer.unlock()
        assert sealer.unlocked

    def test_unlock_fails_after_pcr_drift(self, hw, sealer):
        _device, client = hw
        sealer.lock()
        client.extend(1, hashlib.sha1(b"firmware-update").digest())
        with pytest.raises(SealingError, match="refused to unseal"):
            sealer.unlock()

    def test_unlock_fails_on_foreign_tpm(self, sealer, rng):
        foreign_device = TpmDevice(rng.fork("other-hw"), key_bits=512)
        foreign_device.power_on()
        foreign_client = TpmClient(foreign_device.execute, rng.fork("fc"))
        ek = foreign_client.read_pubek()
        foreign_client.take_ownership(OWNER, SRK, ek)
        thief = StateSealer(foreign_client, SRK, rng.fork("thief"))
        with pytest.raises(SealingError):
            thief.unlock(sealer.sealed_root_blob)

    def test_unlock_without_blob_rejected(self, hw, rng):
        _device, client = hw
        sealer = StateSealer(client, SRK, rng.fork("s2"))
        with pytest.raises(SealingError, match="no sealed root"):
            sealer.unlock()


class TestStateProtection:
    def test_roundtrip(self, sealer):
        blob = sealer.seal_state("uuid-1", "id-aa", b"tpm state bytes")
        assert sealer.unseal_state("uuid-1", "id-aa", blob) == b"tpm state bytes"

    def test_ciphertext_hides_plaintext(self, sealer):
        state = b"very secret key material" * 10
        blob = sealer.seal_state("uuid-1", "id-aa", state)
        assert state not in blob
        assert b"secret key" not in blob

    def test_wrong_uuid_fails(self, sealer):
        blob = sealer.seal_state("uuid-1", "id-aa", b"state")
        with pytest.raises(SealingError):
            sealer.unseal_state("uuid-2", "id-aa", blob)

    def test_wrong_identity_fails(self, sealer):
        blob = sealer.seal_state("uuid-1", "id-aa", b"state")
        with pytest.raises(SealingError):
            sealer.unseal_state("uuid-1", "id-bb", blob)

    def test_tampered_blob_fails(self, sealer):
        blob = bytearray(sealer.seal_state("uuid-1", "id-aa", b"state"))
        blob[-1] ^= 1
        with pytest.raises(SealingError):
            sealer.unseal_state("uuid-1", "id-aa", bytes(blob))

    def test_locked_sealer_refuses(self, sealer):
        blob = sealer.seal_state("uuid-1", "id-aa", b"state")
        sealer.lock()
        with pytest.raises(SealingError, match="locked"):
            sealer.seal_state("uuid-1", "id-aa", b"more")
        with pytest.raises(SealingError, match="locked"):
            sealer.unseal_state("uuid-1", "id-aa", blob)

    def test_keys_differ_across_instances(self, sealer):
        a = sealer.seal_state("uuid-1", "id", b"same state")
        b = sealer.seal_state("uuid-2", "id", b"same state")
        assert a != b
