"""Unit tests for hardware-anchored audit logs."""

import dataclasses

import pytest

from repro.core.anchor import Anchor, AuditAnchor
from repro.core.audit import AuditLog
from repro.util.errors import AccessControlError

from tests.conftest import OWNER

AREA_AUTH = b"anchor-area-auth!!!!"
CTR_AUTH = b"anchor-counter-au!!!"


@pytest.fixture
def anchor_client(owned_client):
    return AuditAnchor(owned_client, OWNER, AREA_AUTH, CTR_AUTH)


def _filled_log(n: int = 5) -> AuditLog:
    log = AuditLog()
    for i in range(n):
        log.append(f"s{i}", i % 2, "TPM_Extend", True, f"rule {i}")
    return log


class TestAnchoring:
    def test_empty_log_refused(self, anchor_client):
        with pytest.raises(AccessControlError):
            anchor_client.anchor(AuditLog())

    def test_anchor_and_verify_clean(self, anchor_client):
        log = _filled_log()
        anchor = anchor_client.anchor(log)
        assert anchor.sequence == 5
        ok, reason = anchor_client.verify(log)
        assert ok, reason

    def test_no_anchor_yet_verifies(self, anchor_client):
        ok, reason = anchor_client.verify(_filled_log())
        assert ok and "no anchors" in reason

    def test_growth_after_anchor_still_verifies(self, anchor_client):
        log = _filled_log()
        anchor_client.anchor(log)
        log.append("late", 9, "TPM_Quote", True, "rule")
        ok, _ = anchor_client.verify(log)
        assert ok

    def test_truncation_detected(self, anchor_client):
        log = _filled_log()
        anchor_client.anchor(log)
        log._records = log._records[:3]
        log._head = log._records[-1].chain_hash
        ok, reason = anchor_client.verify(log)
        assert not ok and "truncated" in reason

    def test_regenerated_log_detected(self, anchor_client):
        """An attacker rebuilds a same-length log from genesis: the chain
        verifies internally but the anchored head differs."""
        log = _filled_log()
        anchor_client.anchor(log)
        forged = AuditLog()
        for i in range(5):
            forged.append(f"s{i}", i % 2, "TPM_Extend", True, "innocuous")
        assert forged.verify_chain()
        ok, reason = anchor_client.verify(forged)
        assert not ok and "regenerated" in reason

    def test_edited_record_detected(self, anchor_client):
        log = _filled_log()
        anchor_client.anchor(log)
        log._records[2] = dataclasses.replace(log._records[2], reason="edited")
        ok, reason = anchor_client.verify(log)
        assert not ok and "chain broken" in reason

    def test_stale_anchor_replay_detected(self, anchor_client, owned_client):
        """Restoring an old NV image cannot hide later anchors: the
        monotonic counter disagrees."""
        from repro.core.anchor import ANCHOR_NV_INDEX, ANCHOR_SIZE

        log = _filled_log()
        first = anchor_client.anchor(log)
        stale_nv = owned_client.nv_read(
            ANCHOR_NV_INDEX, 0, ANCHOR_SIZE, auth=AREA_AUTH
        )
        log.append("x", 0, "TPM_Sign", True, "r")
        anchor_client.anchor(log)
        # Attacker restores the older NV content (counter cannot rewind).
        owned_client.nv_write(AREA_AUTH, ANCHOR_NV_INDEX, 0, stale_nv)
        ok, reason = anchor_client.verify(log)
        assert not ok and "replayed" in reason
        assert first.count == 1

    def test_anchor_serialization_roundtrip(self):
        anchor = Anchor(count=3, sequence=17, chain_head=b"\x42" * 32)
        assert Anchor.deserialize(anchor.serialize()) == anchor

    def test_multiple_anchors_monotonic(self, anchor_client):
        log = _filled_log()
        a1 = anchor_client.anchor(log)
        log.append("x", 0, "TPM_Sign", True, "r")
        a2 = anchor_client.anchor(log)
        assert a2.count == a1.count + 1
        assert a2.sequence == a1.sequence + 1
        assert anchor_client.counter_anchor_count() == 2
