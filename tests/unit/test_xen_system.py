"""Unit tests for XenStore, domains, scheduler, hypervisor and hypercalls."""

import pytest

from repro.crypto.random_source import RandomSource
from repro.xen.domain import DomainState, VcpuState
from repro.xen.hypercall import HypercallInterface
from repro.xen.hypervisor import DOM0_ID, Xen
from repro.xen.scheduler import CreditScheduler
from repro.xen.xenstore import XenStore
from repro.util.errors import DomainNotFound, XenError, XenStoreError


@pytest.fixture
def xen():
    return Xen(RandomSource(b"xen-test"))


class TestXenStore:
    def test_write_read_roundtrip(self):
        store = XenStore()
        store.write(0, "/vtpm/abc/instance", "3", privileged=True)
        assert store.read(0, "/vtpm/abc/instance") == "3"

    def test_unprivileged_confined_to_own_subtree(self):
        store = XenStore()
        store.write(5, "/local/domain/5/device/vtpm/0/state", "1")
        with pytest.raises(XenStoreError):
            store.write(5, "/local/domain/6/device/vtpm/0/state", "1")
        with pytest.raises(XenStoreError):
            store.write(5, "/vtpm/global", "x")

    def test_privileged_writes_anywhere(self):
        store = XenStore()
        store.write(0, "/local/domain/9/name", "victim", privileged=True)
        assert store.read(0, "/local/domain/9/name", privileged=True) == "victim"

    def test_read_permissions(self):
        store = XenStore()
        store.write(5, "/local/domain/5/secret", "s", readers={5})
        assert store.read(5, "/local/domain/5/secret") == "s"
        with pytest.raises(XenStoreError):
            store.read(6, "/local/domain/5/secret")
        # Privileged override (Dom0 reads everything — the stock model).
        assert store.read(0, "/local/domain/5/secret", privileged=True) == "s"

    def test_missing_node(self):
        with pytest.raises(XenStoreError, match="no such node"):
            XenStore().read(0, "/nothing/here")

    def test_remove_subtree(self):
        store = XenStore()
        store.write(0, "/a/b", "1", privileged=True)
        store.write(0, "/a/b/c", "2", privileged=True)
        store.remove(0, "/a/b", privileged=True)
        assert not store.exists("/a/b") and not store.exists("/a/b/c")

    def test_list_dir(self):
        store = XenStore()
        store.write(0, "/dev/vtpm/0", "x", privileged=True)
        store.write(0, "/dev/vtpm/1", "y", privileged=True)
        store.write(0, "/dev/vif/0", "z", privileged=True)
        assert store.list_dir("/dev") == ["vif", "vtpm"]
        assert store.list_dir("/dev/vtpm") == ["0", "1"]

    def test_watch_fires_on_subtree_writes(self):
        store = XenStore()
        seen = []
        store.watch("/dev/vtpm", lambda path, value: seen.append((path, value)))
        store.write(0, "/dev/vtpm/0/state", "4", privileged=True)
        store.write(0, "/other", "x", privileged=True)
        assert seen == [("/dev/vtpm/0/state", "4")]

    def test_relative_path_rejected(self):
        with pytest.raises(XenStoreError):
            XenStore().write(0, "no/leading/slash", "x", privileged=True)

    def test_path_normalization(self):
        store = XenStore()
        store.write(0, "/a//b/", "v", privileged=True)
        assert store.read(0, "/a/b") == "v"


class TestVcpu:
    def test_load_and_dump(self):
        vcpu = VcpuState()
        vcpu.load_bytes("rax", b"\x01\x02\x03\x04\x05\x06\x07\x08")
        assert vcpu.dump()["rax"] == 0x0102030405060708

    def test_unknown_register_rejected(self):
        with pytest.raises(XenError):
            VcpuState().load_bytes("xmm0", b"\x00")

    def test_oversized_value_rejected(self):
        with pytest.raises(XenError):
            VcpuState().load_bytes("rax", b"\x00" * 9)


class TestScheduler:
    def test_round_robin_with_equal_weights(self):
        sched = CreditScheduler()
        for domid in (1, 2, 3):
            sched.add(domid)
        picks = []
        for _ in range(6):
            domid = sched.pick_next()
            picks.append(domid)
            sched.account(domid, 10_000)
        # Every vCPU runs twice over six slots.
        assert sorted(picks) == [1, 1, 2, 2, 3, 3]

    def test_weighted_shares(self):
        sched = CreditScheduler()
        sched.add(1, weight=512)
        sched.add(2, weight=256)
        runs = {1: 0, 2: 0}
        for _ in range(60):
            domid = sched.pick_next()
            runs[domid] += 1
            sched.account(domid, 30_000)
        assert runs[1] > runs[2]
        assert runs[1] / runs[2] == pytest.approx(2.0, rel=0.35)

    def test_context_switches_counted(self):
        sched = CreditScheduler()
        sched.add(1)
        sched.add(2)
        for _ in range(4):
            sched.account(sched.pick_next(), 30_000)
        assert sched.context_switches >= 2

    def test_duplicate_add_rejected(self):
        sched = CreditScheduler()
        sched.add(1)
        with pytest.raises(XenError):
            sched.add(1)

    def test_empty_pick_rejected(self):
        with pytest.raises(XenError):
            CreditScheduler().pick_next()

    def test_refill_with_no_runnable_vcpus_rejected(self):
        # Regression: _refill used to divide by a zero total weight when
        # every vCPU had been removed; it must fail loudly instead.
        sched = CreditScheduler()
        with pytest.raises(XenError, match="no runnable"):
            sched._refill()

    def test_refill_after_all_vcpus_removed_rejected(self):
        sched = CreditScheduler()
        sched.add(1)
        sched.account(sched.pick_next(), 10_000)
        sched.remove(1)
        with pytest.raises(XenError, match="no runnable"):
            sched._refill()

    def test_stats_track_runtime(self):
        sched = CreditScheduler()
        sched.add(1)
        sched.account(sched.pick_next(), 12_345)
        assert sched.stats()[1].total_us == 12_345


class TestHypervisor:
    def test_boot_builds_dom0(self, xen):
        assert xen.dom0.domid == DOM0_ID
        assert xen.dom0.privileged
        assert xen.dom0.state == DomainState.RUNNING

    def test_create_domain(self, xen):
        domain = xen.create_domain("guest", b"kernel")
        assert domain.domid > 0
        assert not domain.privileged
        assert domain.state == DomainState.RUNNING
        assert xen.store.read(0, f"/local/domain/{domain.domid}/name",
                              privileged=True) == "guest"

    def test_duplicate_name_rejected(self, xen):
        xen.create_domain("dup", b"k")
        with pytest.raises(XenError):
            xen.create_domain("dup", b"k")

    def test_destroy_frees_memory_and_store(self, xen):
        domain = xen.create_domain("victim", b"k")
        frames = list(domain.memory.frames)
        xen.destroy_domain(domain.domid)
        assert domain.state == DomainState.DEAD
        assert xen.memory.frames_owned_by(domain.domid) == []
        assert not xen.store.exists(f"/local/domain/{domain.domid}/name")

    def test_cannot_destroy_dom0(self, xen):
        with pytest.raises(XenError):
            xen.destroy_domain(DOM0_ID)

    def test_pause_unpause(self, xen):
        domain = xen.create_domain("p", b"k")
        xen.pause_domain(domain.domid)
        assert domain.state == DomainState.PAUSED
        xen.unpause_domain(domain.domid)
        assert domain.state == DomainState.RUNNING

    def test_lookup_by_name(self, xen):
        domain = xen.create_domain("findme", b"k")
        assert xen.domain_by_name("findme") is domain
        with pytest.raises(DomainNotFound):
            xen.domain_by_name("ghost")

    def test_unknown_domid(self, xen):
        with pytest.raises(DomainNotFound):
            xen.domain(999)


class TestHypercalls:
    def test_unprivileged_domctl_blocked(self, xen):
        guest = xen.create_domain("g", b"k")
        hc = HypercallInterface(xen, guest.domid)
        with pytest.raises(XenError, match="IS_PRIV"):
            hc.create_domain("evil", b"k")
        with pytest.raises(XenError):
            hc.destroy_domain(guest.domid)
        with pytest.raises(XenError):
            hc.dump_vcpu(0)

    def test_dump_memory_covers_owned_frames(self, xen):
        guest = xen.create_domain("g", b"k")
        guest.memory.write(0, b"marker-bytes")
        extra = xen.memory.allocate(guest.domid, 1)
        xen.memory.write(guest.domid, extra[0], 0, b"heap-grown")
        image = HypercallInterface(xen, 0).dump_domain_memory(guest.domid)
        joined = b"".join(image.values())
        assert b"marker-bytes" in joined and b"heap-grown" in joined

    def test_dump_excludes_protected(self, xen):
        guest = xen.create_domain("g", b"k")
        guest.memory.write(0, b"hide-me")
        guest.memory.set_protected(True)
        image = HypercallInterface(xen, 0).dump_domain_memory(guest.domid)
        assert b"hide-me" not in b"".join(image.values())

    def test_xenstore_via_hypercalls(self, xen):
        guest = xen.create_domain("g", b"k")
        hc = HypercallInterface(xen, guest.domid)
        hc.xenstore_write(f"/local/domain/{guest.domid}/data", "42")
        assert hc.xenstore_read(f"/local/domain/{guest.domid}/data") == "42"
