"""Command-level TPM tests through the real wire path (client ↔ device)."""

import hashlib

import pytest

from repro.tpm.constants import (
    TPM_AUTHFAIL,
    TPM_BADTAG,
    TPM_BAD_ORDINAL,
    TPM_BADINDEX,
    TPM_INVALID_KEYHANDLE,
    TPM_INVALID_KEYUSAGE,
    TPM_INVALID_POSTINIT,
    TPM_IOERROR,
    TPM_KEY_BIND,
    TPM_KEY_SIGNING,
    TPM_KEY_STORAGE,
    TPM_KH_SRK,
    TPM_OWNER_SET,
    TPM_SUCCESS,
    TPM_WRONGPCRVAL,
)
from repro.tpm import marshal
from repro.tpm.device import TpmDevice
from repro.tpm.pcr import PcrSelection
from repro.util.errors import TpmError

from tests.conftest import OWNER, SRK

KEY_AUTH = b"K" * 20
DATA_AUTH = b"D" * 20


class TestLifecycle:
    def test_unpowered_device_reports_ioerror(self, rng):
        device = TpmDevice(rng, key_bits=512)
        response = device.execute(marshal.build_command(0x99, b"\x00\x01"))
        assert marshal.parse_response(response).return_code == TPM_IOERROR

    def test_commands_before_startup_rejected(self, rng):
        device = TpmDevice(rng, key_bits=512)
        device.powered = True  # powered but never started
        wire = marshal.build_command(0x46, b"\x00\x00\x00\x08")  # GetRandom
        code = marshal.parse_response(device.execute(wire)).return_code
        assert code == TPM_INVALID_POSTINIT

    def test_double_startup_rejected(self, tpm_device):
        wire = marshal.build_command(0x99, b"\x00\x01")
        code = marshal.parse_response(tpm_device.execute(wire)).return_code
        assert code == TPM_INVALID_POSTINIT

    def test_unknown_ordinal(self, tpm_device):
        wire = marshal.build_command(0x7FFFFFFF, b"")
        code = marshal.parse_response(tpm_device.execute(wire)).return_code
        assert code == TPM_BAD_ORDINAL

    def test_malformed_frame_reports_error_response(self, tpm_device):
        response = tpm_device.execute(b"\x00\xc1\x00\x00\x00\x20trunc")
        assert marshal.parse_response(response).return_code != TPM_SUCCESS


class TestAdmin:
    def test_get_random_length(self, tpm_client):
        assert len(tpm_client.get_random(33)) == 33

    def test_get_random_stream_changes(self, tpm_client):
        assert tpm_client.get_random(16) != tpm_client.get_random(16)

    def test_capability_pcr_count(self, tpm_client):
        value = tpm_client.get_capability_property(0x101)
        assert int.from_bytes(value, "big") == 24

    def test_capability_manufacturer(self, tpm_client):
        assert tpm_client.get_capability_property(0x103) == b"REPR"

    def test_self_test(self, tpm_client):
        tpm_client.self_test()  # must not raise

    def test_flush_unknown_session_ok(self, tpm_client):
        session = tpm_client.oiap()
        tpm_client.flush_session(session)  # close is idempotent


class TestOwnership:
    def test_take_ownership_installs_srk(self, tpm_client, tpm_device):
        ek = tpm_client.read_pubek()
        srk_pub = tpm_client.take_ownership(OWNER, SRK, ek)
        assert tpm_device.state.flags.owned
        assert srk_pub.bits == 512

    def test_double_ownership_rejected(self, tpm_client):
        ek = tpm_client.read_pubek()
        tpm_client.take_ownership(OWNER, SRK, ek)
        with pytest.raises(TpmError) as err:
            tpm_client.take_ownership(OWNER, SRK, ek)
        assert err.value.code == TPM_OWNER_SET

    def test_pubek_locked_after_ownership(self, owned_client):
        with pytest.raises(TpmError) as err:
            owned_client.read_pubek()
        assert err.value.code == TPM_OWNER_SET

    def test_owner_clear_resets(self, owned_client, tpm_device):
        owned_client.owner_clear(OWNER)
        assert not tpm_device.state.flags.owned
        owned_client.read_pubek()  # readable again

    def test_owner_clear_wrong_auth_rejected(self, owned_client):
        with pytest.raises(TpmError) as err:
            owned_client.owner_clear(b"wrong-owner-auth!!!!")
        assert err.value.code == TPM_AUTHFAIL


class TestPcrCommands:
    def test_extend_read_agree(self, tpm_client):
        value = tpm_client.extend(4, b"\xaa" * 20)
        assert tpm_client.pcr_read(4) == value

    def test_extend_bad_index(self, tpm_client):
        with pytest.raises(TpmError) as err:
            tpm_client.extend(24, b"\xaa" * 20)
        assert err.value.code == TPM_BADINDEX

    def test_pcr_reset_requires_locality(self, tpm_client, tpm_device):
        tpm_client.extend(18, b"\xaa" * 20)
        with pytest.raises(TpmError):
            tpm_client.pcr_reset([18])  # transport locality is 0

    def test_pcr_reset_with_locality(self, tpm_device, rng):
        from repro.tpm.client import TpmClient

        client = TpmClient(
            lambda wire: tpm_device.execute(wire, locality=2), rng.fork("loc2")
        )
        client.extend(18, b"\xaa" * 20)
        client.pcr_reset([18])
        assert client.pcr_read(18) == b"\x00" * 20


class TestStorageCommands:
    def test_seal_unseal_roundtrip(self, owned_client):
        blob = owned_client.seal(TPM_KH_SRK, SRK, b"payload", DATA_AUTH)
        assert owned_client.unseal(TPM_KH_SRK, SRK, blob, DATA_AUTH) == b"payload"

    def test_unseal_wrong_data_auth(self, owned_client):
        blob = owned_client.seal(TPM_KH_SRK, SRK, b"payload", DATA_AUTH)
        with pytest.raises(TpmError) as err:
            owned_client.unseal(TPM_KH_SRK, SRK, blob, b"X" * 20)
        assert err.value.code == TPM_AUTHFAIL

    def test_unseal_wrong_parent_auth(self, owned_client):
        blob = owned_client.seal(TPM_KH_SRK, SRK, b"payload", DATA_AUTH)
        with pytest.raises(TpmError) as err:
            owned_client.unseal(TPM_KH_SRK, b"Y" * 20, blob, DATA_AUTH)
        assert err.value.code == TPM_AUTHFAIL

    def test_pcr_bound_seal_enforced(self, owned_client, tpm_device):
        selection = PcrSelection([6])
        digest = tpm_device.state.pcrs.composite_digest(selection)
        blob = owned_client.seal(
            TPM_KH_SRK, SRK, b"bound", DATA_AUTH, selection, digest
        )
        assert owned_client.unseal(TPM_KH_SRK, SRK, blob, DATA_AUTH) == b"bound"
        owned_client.extend(6, b"\xbb" * 20)
        with pytest.raises(TpmError) as err:
            owned_client.unseal(TPM_KH_SRK, SRK, blob, DATA_AUTH)
        assert err.value.code == TPM_WRONGPCRVAL

    def test_create_and_load_signing_key(self, owned_client):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        digest = hashlib.sha1(b"to sign").digest()
        signature = owned_client.sign(handle, KEY_AUTH, digest)
        public = owned_client.get_pub_key(handle, KEY_AUTH)
        assert public.verify_sha1(digest, signature)

    def test_storage_key_cannot_sign(self, owned_client):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_STORAGE, 512
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        with pytest.raises(TpmError) as err:
            owned_client.sign(handle, KEY_AUTH, hashlib.sha1(b"x").digest())
        assert err.value.code == TPM_INVALID_KEYUSAGE

    def test_signing_key_cannot_parent(self, owned_client):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        with pytest.raises(TpmError) as err:
            owned_client.create_wrap_key(handle, KEY_AUTH, KEY_AUTH,
                                         TPM_KEY_SIGNING, 512)
        assert err.value.code == TPM_INVALID_KEYUSAGE

    def test_evicted_key_unusable(self, owned_client):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        owned_client.evict_key(handle)
        with pytest.raises(TpmError) as err:
            owned_client.sign(handle, KEY_AUTH, hashlib.sha1(b"x").digest())
        assert err.value.code == TPM_INVALID_KEYHANDLE

    def test_bind_unbind_roundtrip(self, owned_client, rng):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_BIND, 512
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        public = owned_client.get_pub_key(handle, KEY_AUTH)
        bound = public.encrypt(b"bound-data", rng)
        assert owned_client.unbind(handle, KEY_AUTH, bound) == b"bound-data"

    def test_signing_key_cannot_unbind(self, owned_client, rng):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512
        )
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, blob)
        public = owned_client.get_pub_key(handle, KEY_AUTH)
        with pytest.raises(TpmError) as err:
            owned_client.unbind(handle, KEY_AUTH, public.encrypt(b"x", rng))
        assert err.value.code == TPM_INVALID_KEYUSAGE


class TestQuoteAndIdentity:
    @pytest.fixture
    def signing_handle(self, owned_client):
        blob = owned_client.create_wrap_key(
            TPM_KH_SRK, SRK, KEY_AUTH, TPM_KEY_SIGNING, 512
        )
        return owned_client.load_key2(TPM_KH_SRK, SRK, blob)

    def test_quote_verifies(self, owned_client, signing_handle):
        from repro.tpm.pcr import PcrBank
        from repro.tpm.structures import make_quote_info

        owned_client.extend(10, b"\xcd" * 20)
        nonce = b"\x11" * 20
        composite, values, signature = owned_client.quote(
            signing_handle, KEY_AUTH, nonce, [0, 10]
        )
        public = owned_client.get_pub_key(signing_handle, KEY_AUTH)
        info = make_quote_info(composite, nonce)
        assert public.verify_sha1(hashlib.sha1(info).digest(), signature)
        assert PcrBank.composite_of(PcrSelection([0, 10]), values) == composite

    def test_quote_binds_nonce(self, owned_client, signing_handle):
        from repro.tpm.structures import make_quote_info

        nonce = b"\x11" * 20
        composite, _values, signature = owned_client.quote(
            signing_handle, KEY_AUTH, nonce, [0]
        )
        public = owned_client.get_pub_key(signing_handle, KEY_AUTH)
        forged = make_quote_info(composite, b"\x22" * 20)
        assert not public.verify_sha1(hashlib.sha1(forged).digest(), signature)

    def test_make_and_use_identity(self, owned_client):
        aik_blob, binding = owned_client.make_identity(OWNER, KEY_AUTH, b"aik-1")
        handle = owned_client.load_key2(TPM_KH_SRK, SRK, aik_blob)
        composite, values, signature = owned_client.quote(
            handle, KEY_AUTH, b"\x33" * 20, [0]
        )
        assert len(signature) == 64  # 512-bit key
        assert len(binding) == 20

    def test_activate_identity_roundtrip(self, tpm_client, rng):
        # Activation needs the pre-ownership EK public.
        ek = tpm_client.read_pubek()
        tpm_client.take_ownership(OWNER, SRK, ek)
        aik_blob, _ = tpm_client.make_identity(OWNER, KEY_AUTH, b"aik-2")
        handle = tpm_client.load_key2(TPM_KH_SRK, SRK, aik_blob)
        session_key = b"ca-session-key-16b"
        enc = ek.encrypt(session_key, rng)
        assert tpm_client.activate_identity(OWNER, handle, enc) == session_key


class TestNvAndCounters:
    def test_nv_define_write_read(self, owned_client):
        from repro.tpm.nvram import NV_PER_AUTHREAD, NV_PER_AUTHWRITE

        owned_client.nv_define(OWNER, 0x100, 16,
                               NV_PER_AUTHREAD | NV_PER_AUTHWRITE, b"N" * 20)
        owned_client.nv_write(b"N" * 20, 0x100, 0, b"0123456789abcdef")
        assert owned_client.nv_read(0x100, 8, 8, auth=b"N" * 20) == b"89abcdef"

    def test_nv_wrong_auth_rejected(self, owned_client):
        from repro.tpm.nvram import NV_PER_AUTHWRITE

        owned_client.nv_define(OWNER, 0x100, 16, NV_PER_AUTHWRITE, b"N" * 20)
        with pytest.raises(TpmError) as err:
            owned_client.nv_write(b"X" * 20, 0x100, 0, b"data")
        assert err.value.code == TPM_AUTHFAIL

    def test_nv_open_read(self, owned_client):
        from repro.tpm.nvram import NV_PER_OWNERWRITE

        owned_client.nv_define(OWNER, 0x101, 8, NV_PER_OWNERWRITE, b"N" * 20)
        owned_client.nv_write(OWNER, 0x101, 0, b"openread")
        assert owned_client.nv_read(0x101, 0, 8) == b"openread"

    def test_nv_chunked_large_write(self, rng):
        """Payloads beyond one ring page are split client-side."""
        device = TpmDevice(rng.fork("big-nv"), key_bits=512, nv_capacity=16384)
        device.power_on()
        from repro.tpm.client import TpmClient
        from repro.tpm.nvram import NV_PER_AUTHREAD, NV_PER_AUTHWRITE

        client = TpmClient(device.execute, rng.fork("big-cli"))
        ek = client.read_pubek()
        client.take_ownership(OWNER, SRK, ek)
        client.nv_define(OWNER, 0x200, 10_000,
                         NV_PER_AUTHREAD | NV_PER_AUTHWRITE, b"N" * 20)
        payload = rng.bytes(10_000)
        client.nv_write(b"N" * 20, 0x200, 0, payload)
        assert client.nv_read(0x200, 0, 10_000, auth=b"N" * 20) == payload

    def test_counter_lifecycle(self, owned_client):
        handle, start = owned_client.create_counter(OWNER, b"C" * 20, b"ctrA")
        assert owned_client.increment_counter(b"C" * 20, handle) == start + 1
        assert owned_client.read_counter(handle) == start + 1
        owned_client.release_counter(b"C" * 20, handle)
        with pytest.raises(TpmError):
            owned_client.read_counter(handle)

    def test_counter_wrong_auth(self, owned_client):
        handle, _ = owned_client.create_counter(OWNER, b"C" * 20, b"ctrB")
        with pytest.raises(TpmError) as err:
            owned_client.increment_counter(b"X" * 20, handle)
        assert err.value.code == TPM_AUTHFAIL
