"""Unit tests for small utility modules and cross-cutting invariants."""

import logging

import pytest

from repro.util.errors import (
    AccessDenied,
    PageFault,
    ReproError,
    TpmError,
    XenError,
)
from repro.util.log import enable_tracing, get_logger
from repro.util.validate import (
    check_length,
    check_nonempty,
    check_range,
    check_type,
)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(TpmError, ReproError)
        assert issubclass(PageFault, XenError)
        assert issubclass(XenError, ReproError)

    def test_tpm_error_carries_code(self):
        err = TpmError(0x18, "pcr mismatch")
        assert err.code == 0x18
        assert "pcr mismatch" in str(err)

    def test_tpm_error_default_message(self):
        assert "0x18" in str(TpmError(0x18))

    def test_access_denied_fields(self):
        err = AccessDenied("subj", "TPM_Quote", "no rule")
        assert err.subject == "subj"
        assert err.operation == "TPM_Quote"
        assert "no rule" in err.reason


class TestValidate:
    def test_check_type(self):
        check_type(5, int, "x")
        with pytest.raises(TypeError):
            check_type("5", int, "x")

    def test_check_range(self):
        assert check_range(5, 0, 10, "x") == 5
        with pytest.raises(ValueError):
            check_range(11, 0, 10, "x")
        with pytest.raises(TypeError):
            check_range(True, 0, 10, "x")  # bools are not acceptable ints
        with pytest.raises(TypeError):
            check_range(1.5, 0, 10, "x")

    def test_check_length(self):
        assert check_length(b"abc", 3, "x") == b"abc"
        with pytest.raises(ValueError):
            check_length(b"abc", 4, "x")

    def test_check_nonempty(self):
        check_nonempty([1], "x")
        with pytest.raises(ValueError):
            check_nonempty([], "x")
        check_nonempty(iter([0]), "x")  # generators work too


class TestLog:
    def test_namespacing(self):
        assert get_logger("vtpm").name == "repro.vtpm"
        assert get_logger("repro.tpm").name == "repro.tpm"

    def test_enable_tracing_idempotent(self):
        enable_tracing(logging.INFO)
        handlers_before = len(logging.getLogger("repro").handlers)
        enable_tracing(logging.DEBUG)
        assert len(logging.getLogger("repro").handlers) == handlers_before
        assert logging.getLogger("repro").level == logging.DEBUG


class TestCrossCuttingInvariants:
    def test_every_ordinal_documented_count(self):
        """docs/TPM_COMMANDS.md advertises the implemented ordinal count."""
        from repro.tpm import registered_ordinals

        assert len(registered_ordinals()) == 39

    def test_every_ordinal_has_a_name(self):
        from repro.tpm import registered_ordinals
        from repro.tpm.constants import ordinal_name

        for ordinal in registered_ordinals():
            assert not ordinal_name(ordinal).startswith("TPM_ORD_0x"), hex(ordinal)

    def test_every_ordinal_has_a_policy_class(self):
        from repro.core.policy import CommandClass, classify_ordinal
        from repro.tpm import registered_ordinals

        for ordinal in registered_ordinals():
            assert classify_ordinal(ordinal) is not CommandClass.UNKNOWN, hex(ordinal)

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_cost_model_covers_all_charged_ops(self):
        """Grep the source for charge("...") and ensure the model knows
        every operation name — an unknown op would crash at runtime."""
        import pathlib
        import re

        from repro.sim.timing import CostModel

        known = CostModel().known_ops()
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        pattern = re.compile(r"""charge\(\s*['"]([a-z0-9_.]+)['"]""")
        charged = set()
        for path in src.rglob("*.py"):
            charged.update(pattern.findall(path.read_text()))
        # Dynamic f-string charges (rsa.*) are covered separately.
        missing = {op for op in charged if op not in known}
        assert not missing, f"charged ops missing from the cost model: {missing}"

    def test_rsa_dynamic_charges_known(self):
        from repro.sim.timing import CostModel

        known = CostModel().known_ops()
        for op in ("rsa.sign.1024", "rsa.sign.2048", "rsa.verify.1024",
                   "rsa.verify.2048", "rsa.keygen.2048"):
            assert op in known
