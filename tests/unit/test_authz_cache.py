"""Safety tests for the monitor's authorization decision cache.

The cache trades repeated policy walks for an epoch check, so the one
property that matters is that it can never serve a *stale allow*: every
mutation that could change a decision — rule revocation, identity
re-registration, instance churn, an explicit flush — must take effect on
the very next command even when the cache is hot.  Batched submission
gets the same scrutiny: a rogue re-bind must be caught mid-stream, not
once per kick.
"""

from __future__ import annotations

import pytest

from repro.core.config import AccessMode
from repro.harness.builder import build_platform
from repro.sim.timing import get_context
from repro.tpm import marshal
from repro.tpm.constants import TPM_AUTHFAIL, TPM_ORD_PcrRead, TPM_SUCCESS
from repro.util.bytesio import ByteWriter


def _pcr_read_wire(index: int = 0) -> bytes:
    return marshal.build_command(TPM_ORD_PcrRead, ByteWriter().u32(index).getvalue())


def _rc(response: bytes) -> int:
    return marshal.parse_response(response).return_code


@pytest.fixture
def platform():
    return build_platform(AccessMode.IMPROVED, seed=11, name="cache-test")


@pytest.fixture
def guest(platform):
    return platform.add_guest("alice")


class TestCacheBehaviour:
    def test_repeat_command_hits_cache(self, platform, guest):
        monitor = platform.monitor
        wire = _pcr_read_wire()
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS
        misses = monitor.cache_misses
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS
        assert monitor.cache_hits >= 1
        assert monitor.cache_misses == misses  # no new policy walk

    def test_hit_is_cheaper_than_miss(self, platform, guest):
        clock = get_context().clock
        wire = _pcr_read_wire()
        start = clock.now_us
        guest.frontend.transport(wire)
        miss_cost = clock.now_us - start
        start = clock.now_us
        guest.frontend.transport(wire)
        hit_cost = clock.now_us - start
        assert 0 < hit_cost < miss_cost

    def test_hits_still_audit_every_command(self, platform, guest):
        wire = _pcr_read_wire()
        before = len(platform.audit)
        for _ in range(5):
            guest.frontend.transport(wire)
        assert len(platform.audit) == before + 5
        assert platform.audit.verify_chain()

    def test_explicit_invalidate_forces_reauthorization(self, platform, guest):
        monitor = platform.monitor
        wire = _pcr_read_wire()
        guest.frontend.transport(wire)
        guest.frontend.transport(wire)
        misses = monitor.cache_misses
        monitor.invalidate_cache()
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS
        assert monitor.cache_misses == misses + 1


class TestStaleAllowImpossible:
    def test_revocation_denies_next_command_with_hot_cache(self, platform, guest):
        """A revoked grant must not survive even one cached decision."""
        wire = _pcr_read_wire()
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS  # hot
        subject = guest.domain.measurement.hex()
        assert platform.policy.revoke_subject(subject) > 0
        assert _rc(guest.frontend.transport(wire)) == TPM_AUTHFAIL
        assert platform.audit.records()[-1].allowed is False

    def test_instance_churn_invalidates_cache(self, platform, guest):
        monitor = platform.monitor
        wire = _pcr_read_wire()
        guest.frontend.transport(wire)
        guest.frontend.transport(wire)
        misses = monitor.cache_misses
        # Any instance lifecycle event is a new epoch for everybody.
        platform.add_guest("bob")
        guest.frontend.transport(wire)
        assert monitor.cache_misses > misses

    def test_recycled_domid_cannot_reuse_stale_allows(self, platform, guest):
        """A domain rebuilt under the same domid is a different principal.

        The cache key carries the caller's live measurement and the
        registry version is an epoch component, so the rebuilt domain can
        neither replay the old domain's cached allows nor seed new ones.
        """
        wire = _pcr_read_wire()
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS  # hot
        # Tear down the identity and rebuild "the same" domid with a
        # different kernel — what a reboot-and-replace attack looks like.
        platform.identities.forget(guest.domain.domid)
        guest.domain.kernel_image = b"evil-kernel"
        platform.identities.register(guest.domain)
        assert _rc(guest.frontend.transport(wire)) == TPM_AUTHFAIL
        # And an unregistered rebuild (stale live measurement) also fails.
        platform.identities.forget(guest.domain.domid)
        assert _rc(guest.frontend.transport(wire)) == TPM_AUTHFAIL


class TestBatchedSubmission:
    def test_batch_responses_match_sequential(self, platform, guest):
        wires = [_pcr_read_wire(i) for i in range(8)]
        sequential = [guest.frontend.transport(w) for w in wires]
        batched = guest.frontend.transport_batch(wires)
        assert batched == sequential

    def test_rogue_rebind_blocked_with_hot_cache(self, platform, guest):
        """A forged victim instance id is denied per-frame, cache or no."""
        from repro.util.errors import VtpmError

        victim = platform.add_guest("victim")
        wire = _pcr_read_wire()
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS  # warm
        # The fail-closed backend refuses the re-bind outright...
        with pytest.raises(VtpmError):
            guest.backend.rebind(victim.instance_id)
        # ...and even a batch forged straight at the manager claiming the
        # victim's instance id is denied on every frame despite the hot
        # cache — the decisions are per (subject, instance), not per ring.
        responses = platform.manager.handle_batch(
            guest.domain.domid, victim.instance_id, [wire] * 4
        )
        assert [_rc(r) for r in responses] == [TPM_AUTHFAIL] * 4
        # The guest's own connection is untouched by the refused re-bind.
        assert guest.backend.instance_id == guest.instance_id
        assert _rc(guest.frontend.transport(wire)) == TPM_SUCCESS

    def test_revocation_lands_between_batches(self, platform, guest):
        wire = _pcr_read_wire()
        ok = guest.frontend.transport_batch([wire] * 4)
        assert all(_rc(r) == TPM_SUCCESS for r in ok)
        platform.policy.revoke_subject(guest.domain.measurement.hex())
        denied = guest.frontend.transport_batch([wire] * 4)
        assert all(_rc(r) == TPM_AUTHFAIL for r in denied)
