"""Unit tests for the conformance verification subsystem.

Covers the reference model's prediction order, deterministic schedule
generation, global dedupe, DPOR conflict pruning, ddmin minimality on a
synthetic predicate, repro JSON round-trips, and a tiny zero-violation
exploration sweep on the real pipeline.
"""

import json

import pytest

from repro.core.policy import OWNER_CLASSES, CommandClass
from repro.tpm.constants import TPM_AUTHFAIL, TPM_SUCCESS
from repro.util.errors import ReproError
from repro.verify.explorer import (
    BUDGETS,
    Budget,
    ScheduleRunner,
    Step,
    Violation,
    _conflicting,
    _credit_base_order,
    _dpor_swaps,
    _generate_streams,
    _random_interleaving,
    explore,
)
from repro.verify.model import (
    ALLOW_CODES,
    DENY_CODES,
    TURBULENT_CODES,
    ReferenceModel,
)
from repro.verify.shrink import REPRO_FORMAT, Repro, ddmin, load_repro, save_repro
from repro.crypto.random_source import RandomSource


def _model(*names):
    model = ReferenceModel()
    for name in names:
        model.on_guest_added(name)
    return model


class TestReferenceModel:
    def test_fresh_guest_allows_owner_classes(self):
        model = _model("g0")
        for command_class in OWNER_CLASSES:
            prediction = model.predict("g0", "g0", command_class)
            assert prediction.verdict == "allow"
            assert prediction.accept == ALLOW_CODES
            assert prediction.strict

    def test_revoked_class_denies(self):
        model = _model("g0")
        model.on_revoke("g0", CommandClass.MEASURE)
        prediction = model.predict("g0", "g0", CommandClass.MEASURE)
        assert prediction.verdict == "deny"
        assert prediction.accept == DENY_CODES
        # Other classes unaffected.
        assert model.predict("g0", "g0", CommandClass.READ).verdict == "allow"

    def test_forgotten_identity_denies_everything(self):
        model = _model("g0")
        model.on_identity_forgotten("g0")
        prediction = model.predict("g0", "g0", CommandClass.READ)
        assert prediction.verdict == "deny"
        model.on_identity_reregistered("g0")
        assert model.predict("g0", "g0", CommandClass.READ).verdict == "allow"

    def test_cross_guest_access_denies(self):
        model = _model("g0", "g1")
        prediction = model.predict("g0", "g1", CommandClass.READ)
        assert prediction.verdict == "deny"
        assert "binding" in prediction.reason

    def test_turbulence_beats_deny(self):
        # Prediction order: turbulence widens the accept set even for a
        # command the strict model would deny.
        model = _model("g0", "g1")
        model.on_wedged("g1")
        prediction = model.predict("g0", "g1", CommandClass.READ)
        assert prediction.verdict == "degrade"
        assert prediction.accept == TURBULENT_CODES
        assert not prediction.strict
        model.on_settled("g1")
        assert model.predict("g0", "g1", CommandClass.READ).verdict == "deny"

    def test_turbulent_accept_set_contents(self):
        assert TPM_SUCCESS in TURBULENT_CODES
        assert TPM_AUTHFAIL in TURBULENT_CODES

    def test_manager_restart_restores_full_grants(self):
        model = _model("g0", "g1")
        model.on_revoke("g0", CommandClass.MEASURE)
        model.on_identity_forgotten("g1")
        model.on_manager_restart()
        assert model.predict("g0", "g0", CommandClass.MEASURE).verdict == "allow"
        assert model.predict("g1", "g1", CommandClass.READ).verdict == "allow"

    def test_migration_restores_full_grants(self):
        model = _model("g0")
        model.on_revoke("g0", CommandClass.USE_KEY)
        model.on_migrated("g0")
        assert model.predict("g0", "g0", CommandClass.USE_KEY).verdict == "allow"

    def test_shadow_pcr_extend_chain(self):
        import hashlib

        model = _model("g0")
        m1, m2 = b"\x01" * 20, b"\x02" * 20
        first = model.apply_extend("g0", 3, m1)
        assert first == hashlib.sha1(b"\x00" * 20 + m1).digest()
        second = model.apply_extend("g0", 3, m2)
        assert second == hashlib.sha1(first + m2).digest()
        assert model.pcr_value("g0", 3) == second
        assert model.pcr_value("g0", 4) is None

    def test_sync_guest_overrides_event_state(self):
        model = _model("g0")
        model.on_revoke("g0", CommandClass.MEASURE)
        model.sync_guest(
            "g0", registered=True, grants=set(OWNER_CLASSES),
            pcr_values={}, turbulent=False,
        )
        assert model.predict("g0", "g0", CommandClass.MEASURE).verdict == "allow"


class TestScheduleGeneration:
    def test_streams_deterministic(self):
        a = _generate_streams(7, 0, 3, 6)
        b = _generate_streams(7, 0, 3, 6)
        assert a == b
        assert _generate_streams(7, 1, 3, 6) != a
        assert _generate_streams(8, 0, 3, 6) != a

    def test_streams_shape(self):
        streams = _generate_streams(7, 0, 4, 5)
        assert len(streams) == 4
        for guest, stream in enumerate(streams):
            assert len(stream) == 5
            assert all(step.guest == guest for step in stream)

    def test_credit_base_order_preserves_program_order(self):
        streams = _generate_streams(11, 2, 3, 8)
        order = _credit_base_order(streams, [256, 256, 256])
        assert sorted(
            (s.guest, s.op, s.arg) for s in order
        ) == sorted((s.guest, s.op, s.arg) for stream in streams for s in stream)
        for guest, stream in enumerate(streams):
            mine = [s for s in order if s.guest == guest]
            assert mine == stream

    def test_random_interleaving_preserves_program_order(self):
        streams = _generate_streams(11, 2, 3, 8)
        rng = RandomSource(b"interleave-test")
        order = _random_interleaving(streams, rng)
        assert len(order) == sum(len(s) for s in streams)
        for guest, stream in enumerate(streams):
            assert [s for s in order if s.guest == guest] == stream

    def test_dpor_swaps_only_conflicting_cross_guest_pairs(self):
        schedule = (
            Step(0, "extend", 1),
            Step(1, "extend", 1),     # disjoint footprint with g0: no swap
            Step(1, "pcr_read", 2),   # same guest as previous: no swap
            Step(0, "restart"),       # global: conflicts with anything
        )
        variants = _dpor_swaps(schedule, guests=2, cap=10)
        # Only (pcr_read by g1, restart by g0) is a conflicting
        # cross-guest adjacent pair.
        assert len(variants) == 1
        assert variants[0][2] == Step(0, "restart")
        assert variants[0][3] == Step(1, "pcr_read", 2)

    def test_conflict_predicate(self):
        # Same guest's instance: conflict.
        assert _conflicting(Step(0, "extend", 1), Step(1, "cross_read", 1), 2)
        # Disjoint instances: commute.
        assert not _conflicting(Step(0, "extend", 1), Step(1, "extend", 1), 3)
        # Restart is global.
        assert _conflicting(Step(0, "restart"), Step(2, "pcr_read"), 3)

    def test_dpor_cap_respected(self):
        schedule = tuple(
            Step(i % 2, "cross_read", 0) for i in range(20)
        )
        assert len(_dpor_swaps(schedule, guests=2, cap=3)) <= 3


class TestStepAndReproSerialization:
    def test_step_round_trip(self):
        step = Step(2, "cross_read", 5)
        assert Step.from_json(step.to_json()) == step
        assert Step.from_json({"guest": 1, "op": "forget"}) == Step(1, "forget")

    def test_repro_round_trip(self, tmp_path):
        repro = Repro(
            seed=2010, guests=3, supervised=False, inject_bug="cache-epoch",
            steps=(Step(0, "extend", 3), Step(0, "revoke", 0)),
            violation=Violation(
                kind="oracle-mismatch", step_index=1,
                step=Step(0, "revoke", 0),
                predicted="deny", observed="allow", detail="stale cache",
            ),
        )
        path = tmp_path / "repro.json"
        save_repro(str(path), repro)
        loaded = load_repro(str(path))
        assert loaded.seed == repro.seed
        assert loaded.guests == repro.guests
        assert loaded.inject_bug == "cache-epoch"
        assert loaded.steps == repro.steps
        assert loaded.violation.kind == "oracle-mismatch"
        assert json.loads(path.read_text())["format"] == REPRO_FORMAT

    def test_repro_rejects_wrong_format(self):
        with pytest.raises(ReproError, match="not a repro-verify/1"):
            Repro.loads(json.dumps({"format": "something-else", "steps": []}))


class TestDdmin:
    def test_minimizes_to_exact_culprit_subset(self):
        # Synthetic predicate: fails iff the step list contains the
        # revoke AND a later extend by the same guest.
        def fails(steps):
            steps = list(steps)
            for i, a in enumerate(steps):
                if a.op == "revoke":
                    for b in steps[i + 1:]:
                        if b.op == "extend" and b.guest == a.guest:
                            return Violation(
                                "synthetic", i, a, "deny", "allow", ""
                            )
            return None

        noise = [Step(1, "pcr_read", i) for i in range(10)]
        trace = noise[:4] + [Step(0, "revoke", 0)] + noise[4:] + [
            Step(0, "extend", 2)
        ] + [Step(2, "get_random")] * 3
        minimal, violation = ddmin(trace, fails)
        assert list(minimal) == [Step(0, "revoke", 0), Step(0, "extend", 2)]
        assert violation.kind == "synthetic"

    def test_single_step_input(self):
        def fails(steps):
            if any(s.op == "restart" for s in steps):
                return Violation("synthetic", 0, steps[0], "", "", "")
            return None

        minimal, _ = ddmin([Step(0, "restart")], fails)
        assert list(minimal) == [Step(0, "restart")]

    def test_requires_failing_input(self):
        with pytest.raises(ReproError, match="failing input"):
            ddmin([Step(0, "extend", 0)], lambda steps: None)

    def test_one_minimality(self):
        # Every step of the result is necessary: removing any single one
        # must make the synthetic failure disappear.
        def fails(steps):
            ops = [s.op for s in steps]
            if "grant" in ops and "revoke" in ops and "extend" in ops:
                return Violation("synthetic", 0, steps[0], "", "", "")
            return None

        trace = [
            Step(0, "grant", 1), Step(1, "pcr_read", 0), Step(0, "revoke", 1),
            Step(2, "forget"), Step(0, "extend", 3), Step(1, "extend", 2),
        ]
        minimal, _ = ddmin(trace, fails)
        assert fails(minimal) is not None
        for index in range(len(minimal)):
            candidate = list(minimal[:index]) + list(minimal[index + 1:])
            assert fails(candidate) is None


class TestExplorer:
    def test_tiny_sweep_zero_violations(self):
        budget = Budget(
            name="tiny", guests=3, ops_per_guest=4, rounds=2,
            shuffles_per_round=2, dpor_cap=4, target_schedules=8,
            platform_batch=40,
        )
        report = explore(budget=budget, seed=2010)
        assert report.ok
        assert report.distinct_schedules >= 5
        assert report.steps_executed > 0
        assert report.platforms_built == 1
        assert "oracle violations           : 0" in "\n".join(
            report.summary_lines()
        )

    def test_dedupe_makes_counts_distinct(self):
        budget = Budget(
            name="tiny", guests=2, ops_per_guest=2, rounds=3,
            shuffles_per_round=6, dpor_cap=4, target_schedules=100,
            platform_batch=40,
        )
        report = explore(budget=budget, seed=4)
        # With 2 guests x 2 ops there are at most C(4,2)=6 interleavings
        # per round; dedupe must keep the count at or below the true
        # number of distinct schedules across all 3 rounds.
        assert report.distinct_schedules <= 3 * 6

    def test_runner_detects_injected_stale_cache(self):
        from repro.core import monitor as monitor_mod

        budget = Budget(
            name="tiny", guests=3, ops_per_guest=5, rounds=20,
            shuffles_per_round=6, dpor_cap=8, target_schedules=200,
            platform_batch=40,
        )
        previous = monitor_mod.INJECT_STALE_POLICY_EPOCH
        monitor_mod.INJECT_STALE_POLICY_EPOCH = True
        try:
            report = explore(budget=budget, seed=2010)
        finally:
            monitor_mod.INJECT_STALE_POLICY_EPOCH = previous
        assert not report.ok
        kinds = {f.violation.kind for f in report.failures}
        assert kinds <= {"oracle-mismatch", "denial-count"}

    def test_budgets_registry(self):
        assert set(BUDGETS) == {"small", "deep"}
        assert BUDGETS["small"].target_schedules >= 500
        assert BUDGETS["small"].guests >= 3


class TestConformanceOracle:
    def test_oracle_agrees_on_clean_run(self):
        from repro.core.config import AccessMode
        from repro.harness.builder import build_platform, fresh_timing_context
        from repro.verify.oracle import attach_oracle, settle_oracles

        fresh_timing_context()
        platform = build_platform(AccessMode.IMPROVED, seed=9, name="oracle-t")
        guest = platform.add_guest("g")
        oracle = attach_oracle(platform)
        guest.client.extend(1, b"\x05" * 20)
        guest.client.pcr_read(1)
        checks = settle_oracles([oracle])
        assert checks >= 2
        # Uninstalled: the wrapper is gone, class method shows through.
        assert "authorize" not in vars(platform.monitor)

    def test_oracle_flags_injected_bug(self):
        from repro.core import monitor as monitor_mod
        from repro.core.config import AccessMode
        from repro.core.policy import CommandClass
        from repro.harness.builder import build_platform, fresh_timing_context
        from repro.verify.oracle import attach_oracle, settle_oracles

        fresh_timing_context()
        platform = build_platform(AccessMode.IMPROVED, seed=9, name="oracle-b")
        guest = platform.add_guest("g")
        oracle = attach_oracle(platform)
        previous = monitor_mod.INJECT_STALE_POLICY_EPOCH
        monitor_mod.INJECT_STALE_POLICY_EPOCH = True
        try:
            guest.client.pcr_read(1)  # warm the decision cache
            subject = guest.domain.measurement.hex()
            doomed = [
                rule.rule_id
                for rule in platform.policy.rules_for_subject(subject)
                if rule.command_class is CommandClass.READ
            ]
            for rule_id in doomed:
                platform.policy.revoke_rule(rule_id)
            guest.client.pcr_read(1)  # stale cache wrongly allows
            with pytest.raises(ReproError, match="conformance"):
                settle_oracles([oracle])
        finally:
            monitor_mod.INJECT_STALE_POLICY_EPOCH = previous

    def test_oracle_refuses_baseline_monitor(self):
        from repro.verify.oracle import MonitorConformanceOracle

        with pytest.raises(TypeError, match="AccessControlMonitor"):
            MonitorConformanceOracle(object())

    def test_attach_returns_none_for_baseline_platform(self):
        from repro.core.config import AccessMode
        from repro.harness.builder import build_platform, fresh_timing_context
        from repro.verify.oracle import attach_oracle, settle_oracles

        fresh_timing_context()
        platform = build_platform(AccessMode.BASELINE, seed=9, name="oracle-n")
        assert attach_oracle(platform) is None
        assert settle_oracles([None]) == 0


class TestScheduleRunner:
    def test_history_accumulates_across_schedules(self):
        runner = ScheduleRunner(guests=2, seed=77)
        first = [Step(0, "extend", 1), Step(1, "pcr_read", 2)]
        second = [Step(1, "extend", 4)]
        assert runner.run(first) == []
        assert runner.run(second) == []
        assert runner.history == first + second
        assert runner.steps_executed == 3

    def test_revocation_then_denied_extend(self):
        runner = ScheduleRunner(guests=2, seed=78)
        violations = runner.run([
            Step(0, "revoke", 0),     # arg 0 -> MEASURE
            Step(0, "extend", 3),     # model predicts deny; pipeline denies
            Step(0, "grant", 0),
            Step(0, "extend", 3),     # allowed again
        ])
        assert violations == []

    def test_cross_read_denied(self):
        runner = ScheduleRunner(guests=3, seed=79)
        assert runner.run([Step(0, "cross_read", 0)]) == []
