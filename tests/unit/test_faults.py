"""Unit tests for the fault-injection subsystem itself: plans, the
injector's scheduling/observability, and the shared retry loop."""

import pytest

from repro.core.audit import AuditLog
from repro.faults import (
    DEFAULT_ATTEMPTS,
    KIND_SITES,
    FaultInjector,
    FaultKind,
    FaultPlan,
    current,
    fire,
    injector_scope,
    install,
    spec,
    with_retry,
)
from repro.metrics.recorder import LatencyRecorder
from repro.sim.timing import get_context
from repro.util.errors import FaultInjected, RetryExhausted, SimulationError


def _plan(*specs, seed=3, name="unit-plan"):
    return FaultPlan(specs=tuple(specs), seed=seed, name=name)


class TestFaultSpec:
    def test_exactly_one_schedule_required(self):
        with pytest.raises(SimulationError):
            spec(FaultKind.RING_STALL)
        with pytest.raises(SimulationError):
            spec(FaultKind.RING_STALL, every=2, at=(1,))

    def test_every_schedule_with_offset(self):
        s = spec(FaultKind.RING_STALL, every=3, offset=2)
        assert [i for i in range(10) if s.due_at(i)] == [2, 5, 8]

    def test_at_schedule(self):
        s = spec(FaultKind.DEVICE_TRANSIENT, at=(0, 4))
        assert [i for i in range(6) if s.due_at(i)] == [0, 4]

    def test_probability_defers_to_drbg(self):
        s = spec(FaultKind.STORAGE_ENOSPC, probability=0.5)
        assert s.due_at(0) is None

    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError):
            spec(FaultKind.STORAGE_ENOSPC, probability=1.5)

    def test_match_globbing(self):
        s = spec(FaultKind.DEVICE_TRANSIENT, every=1, match={"device": "vtpm*"})
        assert s.matches_context({"device": "vtpm7"})
        assert not s.matches_context({"device": "hwtpm"})
        assert not s.matches_context({})

    def test_every_kind_has_a_site(self):
        for kind in FaultKind:
            assert kind in KIND_SITES


class TestFaultInjector:
    def test_fires_on_schedule_and_counts(self):
        plan = _plan(spec(FaultKind.DEVICE_TRANSIENT, every=2))
        injector = FaultInjector(plan)
        fired = [
            injector.fire("tpm.device.execute", device="vtpm1") is not None
            for _ in range(6)
        ]
        assert fired == [True, False, True, False, True, False]
        assert injector.fault_counts == {"device-transient": 3}

    def test_max_fires_caps_a_spec(self):
        plan = _plan(spec(FaultKind.DEVICE_TRANSIENT, every=1, max_fires=2))
        injector = FaultInjector(plan)
        events = [injector.fire("tpm.device.execute") for _ in range(5)]
        assert sum(e is not None for e in events) == 2

    def test_unmatched_context_spares_the_call(self):
        plan = _plan(
            spec(FaultKind.DEVICE_TRANSIENT, every=1, match={"device": "vtpm*"})
        )
        injector = FaultInjector(plan)
        assert injector.fire("tpm.device.execute", device="hwtpm") is None
        assert injector.fire("tpm.device.execute", device="vtpm3") is not None

    def test_unknown_site_is_silent(self):
        injector = FaultInjector(_plan(spec(FaultKind.RING_STALL, every=1)))
        assert injector.fire("vtpm.storage.write") is None

    def test_probabilistic_schedule_is_seed_deterministic(self):
        plan = _plan(spec(FaultKind.DEVICE_TRANSIENT, probability=0.3), seed=11)
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for _ in range(50):
                injector.fire("tpm.device.execute")
            runs.append(injector.event_signature())
        assert runs[0] == runs[1]
        assert 0 < len(runs[0]) < 50

    def test_event_signature_is_time_free(self):
        plan = _plan(spec(FaultKind.DEVICE_TRANSIENT, at=(1,)))
        first = FaultInjector(plan)
        get_context().clock.advance(12_345.0)
        second = FaultInjector(plan)
        for injector in (first, second):
            for _ in range(3):
                injector.fire("tpm.device.execute")
        assert first.event_signature() == second.event_signature()

    def test_events_mirror_into_audit_and_metrics(self):
        audit = AuditLog()
        metrics = LatencyRecorder()
        plan = _plan(spec(FaultKind.RING_STALL, at=(0,)))
        injector = FaultInjector(plan, audit=audit, metrics=metrics)
        injector.fire("xen.ring.notify", port=3)
        injector.note_retry("xen.ring.notify")
        injector.note_recovery("xen.ring.notify", 42.0)
        operations = [record.operation for record in audit.records()]
        assert "FAULT:ring-stall" in operations
        assert "FAULT-RECOVERY" in operations
        assert audit.verify_chain()
        assert len(metrics.samples("fault.ring-stall")) == 1
        assert len(metrics.samples("fault.retry")) == 1
        assert metrics.samples("fault.recovery") == [42.0]

    def test_report_summarises_the_run(self):
        plan = _plan(spec(FaultKind.DEVICE_TRANSIENT, every=1, max_fires=2))
        injector = FaultInjector(plan)
        for _ in range(4):
            injector.fire("tpm.device.execute")
        report = injector.report()
        assert report["faults"] == {"device-transient": 2}
        assert report["total_faults"] == 2
        assert report["plan"] == "unit-plan"


class TestAmbientInstallation:
    def test_no_injector_means_no_faults(self):
        assert current() is None
        assert fire("tpm.device.execute") is None

    def test_scope_installs_and_restores(self):
        injector = FaultInjector(_plan(spec(FaultKind.RING_STALL, every=1)))
        with injector_scope(injector) as active:
            assert current() is active
            assert fire("xen.ring.notify") is not None
        assert current() is None
        assert fire("xen.ring.notify") is None

    def test_scopes_nest(self):
        outer = FaultInjector(_plan())
        inner = FaultInjector(_plan())
        with injector_scope(outer):
            with injector_scope(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_install_returns_previous(self):
        injector = FaultInjector(_plan())
        assert install(injector) is None
        assert install(None) is injector


class TestWithRetry:
    def test_success_needs_no_budget(self):
        assert with_retry(lambda: 42, site="unit") == 42

    def test_transient_fault_retried_and_charged(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise FaultInjected("device-transient", "unit", transient=True)
            return "ok"

        before = get_context().clock.now_us
        assert with_retry(flaky, site="unit") == "ok"
        assert calls["n"] == 3
        # Two backoffs: 250 + 500 virtual microseconds.
        assert get_context().clock.now_us - before >= 750.0

    def test_non_transient_fault_propagates_immediately(self):
        def crash():
            raise FaultInjected("storage-torn-write", "unit", transient=False)

        with pytest.raises(FaultInjected):
            with_retry(crash, site="unit")

    def test_exhaustion_raises_retry_exhausted(self):
        def always():
            raise FaultInjected("device-transient", "unit", transient=True)

        with pytest.raises(RetryExhausted) as err:
            with_retry(always, site="unit")
        assert err.value.attempts == DEFAULT_ATTEMPTS
        assert isinstance(err.value.last, FaultInjected)

    def test_other_exceptions_pass_through(self):
        def boom():
            raise ValueError("unrelated")

        with pytest.raises(ValueError):
            with_retry(boom, site="unit")

    def test_recovery_noted_on_ambient_injector(self):
        injector = FaultInjector(_plan())
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise FaultInjected("device-transient", "unit", transient=True)
            return True

        with injector_scope(injector):
            assert with_retry(flaky, site="unit")
        assert injector.retries == 1
        assert injector.recoveries == 1
