"""Unit tests for the multi-host cluster subsystem."""

import struct

import pytest

from repro.cluster import (
    AttestationReport,
    ConsistentHashRing,
    HostState,
    build_fleet,
    measure_host,
    verify_report,
)
from repro.cluster.host import Host
from repro.core.config import AccessMode
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    KIND_SITES,
    injector_scope,
    spec,
)
from repro.harness.builder import build_platform
from repro.harness.chaos import _state_digest
from repro.tpm import marshal
from repro.tpm.constants import TPM_ORD_Extend, TPM_ORD_PcrRead
from repro.util.errors import ClusterError, RetryExhausted


def _pcr_read(index: int = 0) -> bytes:
    return marshal.build_command(TPM_ORD_PcrRead, struct.pack(">I", index))


def _extend(index: int, measurement: bytes) -> bytes:
    return marshal.build_command(
        TPM_ORD_Extend, struct.pack(">I", index) + measurement
    )


class TestHashRing:
    def test_candidates_deterministic_and_complete(self):
        ring = ConsistentHashRing()
        for node in ("h0", "h1", "h2"):
            ring.add(node, weight=4)
        first = ring.candidates("guest-a")
        assert sorted(first) == ["h0", "h1", "h2"]
        assert ring.candidates("guest-a") == first
        assert ring.primary("guest-a") == first[0]

    def test_removing_a_node_only_remaps_its_keys(self):
        ring = ConsistentHashRing()
        for node in ("h0", "h1", "h2", "h3"):
            ring.add(node, weight=8)
        keys = [f"guest-{i}" for i in range(64)]
        before = {k: ring.primary(k) for k in keys}
        ring.remove("h2")
        for key in keys:
            if before[key] != "h2":
                assert ring.primary(key) == before[key]
            else:
                assert ring.primary(key) != "h2"

    def test_membership_errors(self):
        ring = ConsistentHashRing()
        ring.add("h0")
        with pytest.raises(ClusterError):
            ring.add("h0")
        with pytest.raises(ClusterError):
            ring.add("h1", weight=0)
        with pytest.raises(ClusterError):
            ring.remove("h9")
        assert "h0" in ring and len(ring) == 1

    def test_new_fault_kinds_have_sites(self):
        assert KIND_SITES[FaultKind.PARTITION] == "cluster.link"
        assert KIND_SITES[FaultKind.HOST_CRASH] == "cluster.host"


class TestHost:
    def test_capacity_and_admissibility(self):
        platform = build_platform(AccessMode.IMPROVED, seed=301, name="n0")
        with pytest.raises(ClusterError):
            Host("bad", platform, capacity=0)
        host = Host("h0", platform, capacity=1)
        assert host.admissible()
        platform.add_guest("only")
        assert host.spare_capacity == 0
        assert not host.admissible()

    def test_crashed_host_cannot_attest_and_restart_needs_crash(self):
        platform = build_platform(AccessMode.IMPROVED, seed=302, name="n1")
        host = Host("h0", platform, capacity=4)
        with pytest.raises(ClusterError, match="not crashed"):
            host.hard_restart([])
        host.crash()
        assert host.state is HostState.CRASHED
        with pytest.raises(ClusterError, match="cannot attest"):
            host.attestation_report(b"n" * 20)
        with pytest.raises(ClusterError, match="already crashed"):
            host.crash()


class TestAttestation:
    def test_verify_rejects_each_mismatch(self):
        platform = build_platform(AccessMode.IMPROVED, seed=303, name="n2")
        identity = measure_host(platform.hw_client)
        report = AttestationReport(
            host_id="h0", nonce=b"n" * 20, measured_identity=identity,
            policy_epoch=3,
        )
        verify_report(report, expected_identity=identity,
                      expected_epoch=3, nonce=b"n" * 20)
        with pytest.raises(ClusterError, match="nonce"):
            verify_report(report, expected_identity=identity,
                          expected_epoch=3, nonce=b"x" * 20)
        with pytest.raises(ClusterError, match="identity"):
            verify_report(report, expected_identity="0" * 64,
                          expected_epoch=3, nonce=b"n" * 20)
        with pytest.raises(ClusterError, match="epoch"):
            verify_report(report, expected_identity=identity,
                          expected_epoch=4, nonce=b"n" * 20)

    def test_measurement_tracks_live_hardware_pcrs(self):
        platform = build_platform(AccessMode.IMPROVED, seed=304, name="n3")
        before = measure_host(platform.hw_client)
        platform.hw_client.extend(1, b"\xee" * 20)
        assert measure_host(platform.hw_client) != before


class TestSchedulerAndRouter:
    def test_placement_is_deterministic_and_recorded(self):
        fleet_a = build_fleet(num_hosts=3, seed=310, capacity=8, name="fa")
        fleet_b = build_fleet(num_hosts=3, seed=310, capacity=8, name="fb")
        names = [f"g{i}" for i in range(6)]
        placed_a = [fleet_a.add_guest(n) for n in names]
        placed_b = [fleet_b.add_guest(n) for n in names]
        assert placed_a == placed_b
        assert (fleet_a.scheduler.trail_signature()
                == fleet_b.scheduler.trail_signature())

    def test_placement_fails_closed_when_fleet_is_full(self):
        fleet = build_fleet(num_hosts=2, seed=311, capacity=1, name="ff")
        fleet.add_guest("a")
        fleet.add_guest("b")
        with pytest.raises(ClusterError, match="no admissible host"):
            fleet.add_guest("c")

    def test_router_addresses_by_name_and_fails_on_unknown(self):
        fleet = build_fleet(num_hosts=2, seed=312, capacity=8, name="fr")
        fleet.add_guest("known")
        response = fleet.router.send("known", _pcr_read())
        assert marshal.parse_response(response).return_code == 0
        with pytest.raises(ClusterError, match="no guest named"):
            fleet.router.send("ghost", _pcr_read())
        with pytest.raises(ClusterError, match="already registered"):
            fleet.add_guest("known")

    def test_crashed_host_is_unroutable_until_recovery(self):
        fleet = build_fleet(num_hosts=2, seed=313, capacity=8, name="fc")
        host_id = fleet.add_guest("pinned")
        fleet.crash_host(host_id)
        with pytest.raises(ClusterError, match="unroutable"):
            fleet.router.send("pinned", _pcr_read())
        fleet.recover_host(host_id)
        response = fleet.router.send("pinned", _pcr_read())
        assert marshal.parse_response(response).return_code == 0

    def test_router_client_survives_migration(self):
        fleet = build_fleet(num_hosts=2, seed=314, capacity=8, name="fm")
        source = fleet.add_guest("mobile")
        client = fleet.router.client_for("mobile")
        client.extend(5, b"\x5a" * 20)
        before = client.pcr_read(5)
        target = "h1" if source == "h0" else "h0"
        fleet.migrate("mobile", target)
        assert fleet.router.locate("mobile").host_id == target
        assert client.pcr_read(5) == before


class TestMigrator:
    def test_migration_preserves_state_digest(self):
        fleet = build_fleet(num_hosts=2, seed=320, capacity=8, name="mg")
        source = fleet.add_guest("payload")
        fleet.router.send("payload", _extend(7, b"\x07" * 20))
        digest = _state_digest(fleet.instance_for("payload"))
        target = "h1" if source == "h0" else "h0"
        fleet.migrate("payload", target)
        assert _state_digest(fleet.instance_for("payload")) == digest
        # the source host no longer owns a copy
        assert fleet.hosts[source].resident_count == 0

    def test_same_host_and_full_target_are_refused(self):
        fleet = build_fleet(num_hosts=2, seed=321, capacity=1, name="mr")
        source = fleet.add_guest("a")
        target = "h1" if source == "h0" else "h0"
        fleet.add_guest("b")  # fills the other host
        with pytest.raises(ClusterError, match="already lives"):
            fleet.migrate("a", source)
        with pytest.raises(ClusterError, match="not admissible"):
            fleet.migrate("a", target)

    def test_tampered_target_fails_closed(self):
        """A target whose boot chain moved after enrolment is refused
        before any state leaves the source."""
        fleet = build_fleet(num_hosts=2, seed=322, capacity=8, name="mt")
        source = fleet.add_guest("victim")
        target = "h1" if source == "h0" else "h0"
        fleet.hosts[target].platform.hw_client.extend(0, b"\xbd" * 20)
        with pytest.raises(ClusterError, match="identity"):
            fleet.migrate("victim", target)
        # fail closed: the guest keeps serving where it was
        assert fleet.router.locate("victim").host_id == source
        response = fleet.router.send("victim", _pcr_read())
        assert marshal.parse_response(response).return_code == 0

    def test_stale_policy_epoch_fails_closed(self):
        fleet = build_fleet(num_hosts=2, seed=323, capacity=8, name="me")
        source = fleet.add_guest("victim")
        target = "h1" if source == "h0" else "h0"
        fleet.bump_policy_epoch(host_ids=[source])  # target left stale
        with pytest.raises(ClusterError, match="epoch"):
            fleet.migrate("victim", target)
        assert fleet.router.locate("victim").host_id == source

    def test_partition_mid_transfer_rolls_back_and_retries(self):
        fleet = build_fleet(num_hosts=2, seed=324, capacity=8, name="mp")
        source = fleet.add_guest("mover")
        fleet.router.send("mover", _extend(3, b"\x33" * 20))
        digest = _state_digest(fleet.instance_for("mover"))
        target = "h1" if source == "h0" else "h0"
        plan = FaultPlan(
            name="cut-transfer", seed=7,
            specs=(spec(FaultKind.PARTITION, every=1, max_fires=1,
                        match={"phase": "transfer"}),),
        )
        with injector_scope(FaultInjector(plan)):
            fleet.migrate("mover", target)
        record = fleet.migrator.trail[-1]
        assert record.outcome == "moved" and record.attempts == 2
        assert fleet.router.locate("mover").host_id == target
        assert _state_digest(fleet.instance_for("mover")) == digest

    def test_persistent_partition_exhausts_and_guest_stays(self):
        fleet = build_fleet(num_hosts=2, seed=325, capacity=8, name="mx")
        source = fleet.add_guest("stuck")
        target = "h1" if source == "h0" else "h0"
        plan = FaultPlan(
            name="dead-link", seed=7,
            specs=(spec(FaultKind.PARTITION, probability=1.0,
                        match={"phase": "transfer"}),),
        )
        with injector_scope(FaultInjector(plan)):
            with pytest.raises(RetryExhausted):
                fleet.migrate("stuck", target)
        assert fleet.migrator.trail[-1].outcome == "failed"
        assert fleet.router.locate("stuck").host_id == source
        response = fleet.router.send("stuck", _pcr_read())
        assert marshal.parse_response(response).return_code == 0


class TestFleetLifecycle:
    def test_host_crash_fault_drives_crash_and_recovery(self):
        fleet = build_fleet(num_hosts=2, seed=330, capacity=8, name="fl")
        fleet.add_guest("a")
        fleet.add_guest("b")
        digests = {
            n: _state_digest(fleet.instance_for(n)) for n in ("a", "b")
        }
        plan = FaultPlan(
            name="kill-h0", seed=7,
            specs=(spec(FaultKind.HOST_CRASH, every=1, max_fires=1,
                        match={"host": "h0"}),),
        )
        with injector_scope(FaultInjector(plan)):
            crashes = fleet.poll_host_faults()
        assert crashes == 1
        assert fleet.hosts["h0"].state is HostState.UP
        for name in ("a", "b"):
            assert _state_digest(fleet.instance_for(name)) == digests[name]
            response = fleet.router.send(name, _pcr_read())
            assert marshal.parse_response(response).return_code == 0

    def test_recovery_restores_migrated_in_residents(self):
        """hard_restart must restore guests the host never created itself."""
        fleet = build_fleet(num_hosts=2, seed=331, capacity=8, name="fi")
        source = fleet.add_guest("immigrant")
        fleet.router.send("immigrant", _extend(9, b"\x99" * 20))
        target = "h1" if source == "h0" else "h0"
        fleet.migrate("immigrant", target)
        digest = _state_digest(fleet.instance_for("immigrant"))
        fleet.crash_host(target)
        fleet.recover_host(target)
        assert _state_digest(fleet.instance_for("immigrant")) == digest

    def test_rebalance_moves_guests_off_a_loaded_host(self):
        fleet = build_fleet(num_hosts=2, seed=332, capacity=8, name="fb2")
        for i in range(4):
            fleet.add_guest(f"g{i}")
        # skew the load signal hard against one host
        skewed = fleet.router.placements()["g0"]
        for _ in range(50):
            fleet.hosts[skewed].observe_service_us(5_000.0)
        moved = fleet.rebalance()
        assert all(r.source == skewed for r in moved)
        for record in moved:
            assert fleet.router.locate(record.guest).host_id == record.target
