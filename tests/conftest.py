"""Shared fixtures.

Every test gets a fresh timing context (clock at zero, default cost model)
so virtual-time assertions are isolated; platform fixtures build the two
regimes with small keys for host speed.
"""

from __future__ import annotations

import pytest

from repro.core.config import AccessMode
from repro.crypto.random_source import RandomSource
from repro.harness.builder import Platform, build_platform, fresh_timing_context


@pytest.fixture(autouse=True)
def timing_context():
    """Fresh virtual clock and cost model per test."""
    yield fresh_timing_context()


@pytest.fixture
def rng() -> RandomSource:
    return RandomSource(b"test-rng-seed")


@pytest.fixture
def baseline_platform() -> Platform:
    return build_platform(AccessMode.BASELINE, seed=3, name="t-baseline")


@pytest.fixture
def improved_platform() -> Platform:
    return build_platform(AccessMode.IMPROVED, seed=3, name="t-improved")


@pytest.fixture
def tpm_device(rng):
    """A powered hardware-style TPM with small keys."""
    from repro.tpm.device import TpmDevice

    device = TpmDevice(rng.fork("dev"), key_bits=512)
    device.power_on()
    return device


@pytest.fixture
def tpm_client(tpm_device, rng):
    from repro.tpm.client import TpmClient

    return TpmClient(tpm_device.execute, rng.fork("cli"))


OWNER = b"T" * 20
SRK = b"S" * 20


@pytest.fixture
def owned_client(tpm_client):
    """A client whose TPM already has an owner and SRK."""
    ek = tpm_client.read_pubek()
    tpm_client.take_ownership(OWNER, SRK, ek)
    return tpm_client
